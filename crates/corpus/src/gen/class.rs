//! University course-page generator: logistics (lectures, exams), staff
//! (instructors, TAs), textbooks, and grading schemes.

use rand::rngs::StdRng;
use rand::Rng;
use webqa_nlp::lexicon;

use super::util::{person_names, pick, sample, HtmlDoc};
use super::GeneratedPage;

#[derive(Debug)]
struct ClassFacts {
    code: String,
    title: String,
    instructors: Vec<String>,
    tas: Vec<String>,
    lectures: Vec<String>,
    exams: Vec<(String, String)>, // (label, date)
    textbooks: Vec<String>,
    grading: Vec<String>,
}

fn make_facts(rng: &mut StdRng) -> ClassFacts {
    let code = format!("CS {}", rng.gen_range(101..499));
    let title = pick(rng, lexicon::COURSE_TOPICS).to_string();
    let year = rng.gen_range(2023..2027);

    let day_patterns = ["MWF", "TTh", "MW", "Friday"];
    let n_sections = rng.gen_range(1..3);
    let mut lectures = Vec::new();
    for _ in 0..n_sections {
        let h = rng.gen_range(8..16);
        lectures.push(format!("{} {h}:00-{}:15", pick(rng, &day_patterns), h + 1));
    }

    let mut exams = vec![(
        "Midterm".to_string(),
        format!(
            "{} {}, {year}",
            pick(rng, lexicon::MONTHS),
            rng.gen_range(1..28)
        ),
    )];
    if rng.gen_bool(0.8) {
        exams.push((
            "Final exam".to_string(),
            format!(
                "{} {}, {year}",
                pick(rng, lexicon::MONTHS),
                rng.gen_range(1..28)
            ),
        ));
    }

    let mut grading = Vec::new();
    let components = [
        ("Homework", 30),
        ("Midterm", 20),
        ("Final exam", 30),
        ("Projects", 15),
        ("Participation", 5),
    ];
    let n_components = rng.gen_range(3..5);
    for (name, pct) in sample(rng, &components, n_components) {
        grading.push(format!("{name}: {pct}%"));
    }

    ClassFacts {
        code,
        title,
        instructors: {
            let n = rng.gen_range(1..3);
            person_names(rng, n)
        },
        tas: {
            let n = rng.gen_range(1..4);
            person_names(rng, n)
        },
        lectures,
        exams,
        textbooks: {
            let n = rng.gen_range(1..3);
            sample(rng, lexicon::TEXTBOOKS, n)
                .into_iter()
                .map(|s| s.to_string())
                .collect()
        },
        grading,
    }
}

fn gold_for(facts: &ClassFacts) -> Vec<(&'static str, Vec<String>)> {
    vec![
        ("class_t1", facts.lectures.clone()),
        ("class_t2", facts.instructors.clone()),
        ("class_t3", facts.tas.clone()),
        (
            "class_t4",
            facts.exams.iter().map(|(_, d)| d.clone()).collect(),
        ),
        ("class_t5", facts.textbooks.clone()),
        ("class_t6", facts.grading.clone()),
    ]
}

fn render(rng: &mut StdRng, facts: &ClassFacts) -> String {
    let full_title = format!("{}: {}", facts.code, facts.title);
    let mut doc = HtmlDoc::new(&full_title);
    doc.h1(&full_title);
    doc.p(format!(
        "Welcome to {}. This course covers the fundamentals of {}.",
        facts.code,
        facts.title.to_lowercase()
    ));

    let mut sections: Vec<u8> = vec![0, 1, 2, 3, 4];
    for i in (1..sections.len()).rev() {
        let j = rng.gen_range(0..=i);
        sections.swap(i, j);
    }
    let level = if rng.gen_bool(0.7) { 2 } else { 3 };
    for s in sections {
        match s {
            0 => render_staff(rng, facts, &mut doc, level),
            1 => render_lectures(rng, facts, &mut doc, level),
            2 => render_exams(rng, facts, &mut doc, level),
            3 => render_textbooks(rng, facts, &mut doc, level),
            _ => render_grading(rng, facts, &mut doc, level),
        }
    }
    doc.finish()
}

fn render_staff(rng: &mut StdRng, facts: &ClassFacts, doc: &mut HtmlDoc, level: u8) {
    match rng.gen_range(0..3) {
        0 => {
            let instructor_titles = ["Instructors", "Instructor"];
            let ta_titles = ["Teaching Assistants", "TAs"];
            doc.heading(level, "Course Staff");
            doc.bold_header(pick(rng, &instructor_titles));
            doc.ul(&facts.instructors);
            doc.bold_header(pick(rng, &ta_titles));
            doc.ul(&facts.tas);
        }
        1 => {
            let instructor_titles = ["Instructors", "Instructor"];
            let ta_titles = ["Teaching Assistants", "TAs"];
            doc.heading(level, pick(rng, &instructor_titles));
            doc.p(facts.instructors.join(", "));
            doc.heading(level, pick(rng, &ta_titles));
            doc.p(facts.tas.join(", "));
        }
        _ => {
            doc.heading(level, "Staff");
            let mut rows = Vec::new();
            for i in &facts.instructors {
                rows.push(("Instructor".to_string(), i.clone()));
            }
            for t in &facts.tas {
                rows.push(("TA".to_string(), t.clone()));
            }
            doc.table(&rows);
        }
    }
}

fn render_lectures(rng: &mut StdRng, facts: &ClassFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = ["Lectures", "Sections", "Schedule", "Lecture Times"];
    doc.heading(level, pick(rng, &titles));
    if facts.lectures.len() > 1 {
        let lines: Vec<String> = facts
            .lectures
            .iter()
            .enumerate()
            .map(|(i, l)| format!("Section {}: {l}", i + 1))
            .collect();
        doc.ul(&lines);
    } else if rng.gen_bool(0.5) {
        doc.ul(&facts.lectures);
    } else {
        doc.p(format!("Lectures meet {}.", facts.lectures[0]));
    }
}

fn render_exams(rng: &mut StdRng, facts: &ClassFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = ["Exams", "Midterms and Finals", "Exam Schedule"];
    doc.heading(level, pick(rng, &titles));
    if rng.gen_bool(0.5) {
        doc.table(&facts.exams);
    } else {
        let lines: Vec<String> = facts
            .exams
            .iter()
            .map(|(k, v)| format!("{k}: {v}"))
            .collect();
        doc.ul(&lines);
    }
}

fn render_textbooks(rng: &mut StdRng, facts: &ClassFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = ["Textbooks", "Required Texts", "Course Materials"];
    doc.heading(level, pick(rng, &titles));
    if rng.gen_bool(0.7) {
        doc.ul(&facts.textbooks);
    } else {
        doc.p(facts.textbooks.join("; "));
    }
}

fn render_grading(rng: &mut StdRng, facts: &ClassFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = ["Grading", "Grades", "Assessment", "Grading Rubric"];
    doc.heading(level, pick(rng, &titles));
    doc.p("Your final grade is computed as follows:");
    if rng.gen_bool(0.7) {
        doc.ul(&facts.grading);
    } else {
        doc.p(facts.grading.join(", "));
    }
}

/// Generates one class page.
pub(crate) fn generate(rng: &mut StdRng, index: usize) -> GeneratedPage {
    let facts = make_facts(rng);
    let html = render(rng, &facts);
    GeneratedPage {
        name: format!("class_{index:02}"),
        html,
        gold: gold_for(&facts).into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use webqa_html::PageTree;
    use webqa_metrics::tokenize_all;

    fn page(seed: u64) -> GeneratedPage {
        let mut rng = StdRng::seed_from_u64(seed);
        generate(&mut rng, 0)
    }

    #[test]
    fn gold_tokens_present() {
        for seed in 0..20 {
            let p = page(seed);
            let tree = PageTree::parse(&p.html);
            let toks: std::collections::HashSet<_> = tokenize_all(
                &tree
                    .iter()
                    .map(|n| tree.text(n).to_string())
                    .collect::<Vec<_>>(),
            )
            .into_iter()
            .collect();
            for (task, golds) in &p.gold {
                for t in tokenize_all(golds) {
                    assert!(
                        toks.contains(&t),
                        "seed {seed} task {task}: token {t:?} missing"
                    );
                }
            }
        }
    }

    #[test]
    fn all_class_tasks_present() {
        let p = page(0);
        for t in [
            "class_t1", "class_t2", "class_t3", "class_t4", "class_t5", "class_t6",
        ] {
            assert!(p.gold.contains_key(t));
            assert!(!p.gold[t].is_empty(), "{t} gold empty");
        }
    }

    #[test]
    fn exam_gold_is_dates() {
        let p = page(9);
        for d in &p.gold["class_t4"] {
            assert!(d.contains(','), "exam gold should be a date, got {d}");
        }
    }
}
