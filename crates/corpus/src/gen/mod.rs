//! Seeded page generators for the four evaluation domains.

mod class;
mod clinic;
mod conference;
mod faculty;
pub(crate) mod util;

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tasks::Domain;

/// One generated webpage with its per-task gold labels.
#[derive(Debug, Clone)]
pub struct GeneratedPage {
    /// Stable page name, e.g. `"faculty_07"`.
    pub name: String,
    /// The page HTML.
    pub html: String,
    /// Gold extraction per task id. Tasks of other domains are absent;
    /// a present-but-empty entry means "nothing to extract on this page".
    pub gold: HashMap<&'static str, Vec<String>>,
}

impl GeneratedPage {
    /// The gold strings for `task_id` (empty when absent).
    pub fn gold(&self, task_id: &str) -> &[String] {
        self.gold.get(task_id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Parses the page into the paper's tree representation.
    pub fn tree(&self) -> webqa_html::PageTree {
        webqa_html::PageTree::parse(&self.html)
    }
}

/// Generates `n` pages of the given domain from `seed`.
///
/// Page `i` of a given `(domain, seed)` is stable regardless of `n`.
pub fn generate_pages(domain: Domain, n: usize, seed: u64) -> Vec<GeneratedPage> {
    (0..n)
        .map(|i| {
            // Independent RNG per page so prefixes are stable.
            let mut rng = StdRng::seed_from_u64(
                seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)) ^ domain_salt(domain),
            );
            match domain {
                Domain::Faculty => faculty::generate(&mut rng, i),
                Domain::Conference => conference::generate(&mut rng, i),
                Domain::Class => class::generate(&mut rng, i),
                Domain::Clinic => clinic::generate(&mut rng, i),
            }
        })
        .collect()
}

fn domain_salt(domain: Domain) -> u64 {
    match domain {
        Domain::Faculty => 0xFAC0_17AD,
        Domain::Conference => 0xC04F_EE00,
        Domain::Class => 0xC1A5_5000,
        Domain::Clinic => 0xC114_1C00,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_stability() {
        let five = generate_pages(Domain::Faculty, 5, 42);
        let ten = generate_pages(Domain::Faculty, 10, 42);
        for (a, b) in five.iter().zip(&ten) {
            assert_eq!(a.html, b.html);
        }
    }

    #[test]
    fn domains_differ() {
        let f = generate_pages(Domain::Faculty, 1, 42);
        let c = generate_pages(Domain::Clinic, 1, 42);
        assert_ne!(f[0].html, c[0].html);
    }

    #[test]
    fn seeds_differ() {
        let a = generate_pages(Domain::Class, 1, 1);
        let b = generate_pages(Domain::Class, 1, 2);
        assert_ne!(a[0].html, b[0].html);
    }

    #[test]
    fn pages_parse_to_nontrivial_trees() {
        for d in Domain::ALL {
            for p in generate_pages(d, 3, 7) {
                let t = p.tree();
                assert!(t.len() > 5, "{} too small", p.name);
                assert!(!t.text(t.root()).is_empty());
            }
        }
    }
}
