//! Conference-website generator: calls for papers with chairs, program
//! committees, topics of interest, important dates, and review policy.

use rand::rngs::StdRng;
use rand::Rng;
use webqa_nlp::lexicon;

use super::util::{person_names, pick, sample, university, HtmlDoc};
use super::GeneratedPage;

#[derive(Debug)]
struct ConferenceFacts {
    name: String,
    chairs: Vec<String>,
    pc: Vec<(String, String)>, // (member, institution)
    topics: Vec<String>,
    submission_deadline: String,
    notification: String,
    camera_ready: String,
    double_blind: bool,
}

fn date(rng: &mut StdRng, year: u32) -> String {
    format!(
        "{} {}, {year}",
        pick(rng, lexicon::MONTHS),
        rng.gen_range(1..28)
    )
}

fn make_facts(rng: &mut StdRng) -> ConferenceFacts {
    let acro = pick(rng, lexicon::CONFERENCES);
    let year = rng.gen_range(2024..2027);
    let n_pc = rng.gen_range(6..14);
    let pc = person_names(rng, n_pc)
        .into_iter()
        .map(|n| (n, university(rng)))
        .collect();
    let n_chairs = rng.gen_range(1..3);
    let n_topics = rng.gen_range(4..9);
    ConferenceFacts {
        name: format!("{acro} {year}"),
        chairs: person_names(rng, n_chairs),
        pc,
        topics: sample(rng, lexicon::RESEARCH_TOPICS, n_topics)
            .into_iter()
            .map(|s| s.to_string())
            .collect(),
        submission_deadline: date(rng, year - 1),
        notification: date(rng, year - 1),
        camera_ready: date(rng, year),
        double_blind: rng.gen_bool(0.6),
    }
}

fn gold_for(facts: &ConferenceFacts) -> Vec<(&'static str, Vec<String>)> {
    vec![
        ("conf_t1", facts.chairs.clone()),
        ("conf_t2", facts.pc.iter().map(|(n, _)| n.clone()).collect()),
        ("conf_t3", facts.topics.clone()),
        ("conf_t4", vec![facts.submission_deadline.clone()]),
        (
            "conf_t5",
            vec![if facts.double_blind {
                "double-blind"
            } else {
                "single-blind"
            }
            .to_string()],
        ),
        ("conf_t6", {
            let mut insts: Vec<String> = facts.pc.iter().map(|(_, u)| u.clone()).collect();
            insts.sort();
            insts.dedup();
            insts
        }),
    ]
}

fn render(rng: &mut StdRng, facts: &ConferenceFacts) -> String {
    let mut doc = HtmlDoc::new(&facts.name);
    doc.h1(&facts.name);
    doc.p(format!(
        "The {} conference invites submissions on all aspects of {}.",
        facts.name,
        pick(rng, lexicon::RESEARCH_TOPICS)
    ));

    let mut sections: Vec<u8> = vec![0, 1, 2, 3, 4];
    for i in (1..sections.len()).rev() {
        let j = rng.gen_range(0..=i);
        sections.swap(i, j);
    }
    let level = if rng.gen_bool(0.7) { 2 } else { 3 };
    for s in sections {
        match s {
            0 => render_chairs(rng, facts, &mut doc, level),
            1 => render_pc(rng, facts, &mut doc, level),
            2 => render_topics(rng, facts, &mut doc, level),
            3 => render_dates(rng, facts, &mut doc, level),
            _ => render_policy(rng, facts, &mut doc, level),
        }
    }
    doc.finish()
}

fn render_chairs(rng: &mut StdRng, facts: &ConferenceFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = [
        "Program Chairs",
        "Program Co-chairs",
        "PC Chairs",
        "Organizers",
    ];
    doc.heading(level, pick(rng, &titles));
    let lines: Vec<String> = facts
        .chairs
        .iter()
        .map(|c| format!("{c} (program chair)"))
        .collect();
    if rng.gen_bool(0.6) {
        doc.ul(&lines);
    } else {
        doc.p(lines.join(", "));
    }
}

fn render_pc(rng: &mut StdRng, facts: &ConferenceFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = ["Program Committee", "PC Members", "Committee"];
    doc.heading(level, pick(rng, &titles));
    match rng.gen_range(0..3) {
        0 => {
            let lines: Vec<String> = facts.pc.iter().map(|(n, u)| format!("{n}, {u}")).collect();
            doc.ul(&lines);
        }
        1 => {
            let rows: Vec<(String, String)> = facts
                .pc
                .iter()
                .map(|(n, u)| (n.clone(), u.clone()))
                .collect();
            doc.table(&rows);
        }
        _ => {
            let lines: Vec<String> = facts.pc.iter().map(|(n, u)| format!("{n} ({u})")).collect();
            doc.p(lines.join("; "));
        }
    }
}

fn render_topics(rng: &mut StdRng, facts: &ConferenceFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = ["Topics of Interest", "Topics", "Call for Papers"];
    doc.heading(level, pick(rng, &titles));
    doc.p("Submissions are welcome on topics including:");
    if rng.gen_bool(0.75) {
        doc.ul(&facts.topics);
    } else {
        doc.p(facts.topics.join(", "));
    }
}

fn render_dates(rng: &mut StdRng, facts: &ConferenceFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = ["Important Dates", "Dates", "Deadlines"];
    doc.heading(level, pick(rng, &titles));
    let rows = vec![
        (
            "Paper submission deadline".to_string(),
            facts.submission_deadline.clone(),
        ),
        (
            "Author notification".to_string(),
            facts.notification.clone(),
        ),
        (
            "Camera-ready deadline".to_string(),
            facts.camera_ready.clone(),
        ),
    ];
    if rng.gen_bool(0.5) {
        doc.table(&rows);
    } else {
        let lines: Vec<String> = rows.iter().map(|(k, v)| format!("{k}: {v}")).collect();
        doc.ul(&lines);
    }
}

fn render_policy(rng: &mut StdRng, facts: &ConferenceFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = ["Submission Policy", "Reviewing", "Review Process"];
    doc.heading(level, pick(rng, &titles));
    let kind = if facts.double_blind {
        "double-blind"
    } else {
        "single-blind"
    };
    doc.p(format!(
        "Reviewing for {} is {kind}. Please consult the submission guidelines.",
        facts.name
    ));
}

/// Generates one conference page.
pub(crate) fn generate(rng: &mut StdRng, index: usize) -> GeneratedPage {
    let facts = make_facts(rng);
    let html = render(rng, &facts);
    GeneratedPage {
        name: format!("conference_{index:02}"),
        html,
        gold: gold_for(&facts).into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use webqa_html::PageTree;
    use webqa_metrics::tokenize_all;

    fn page(seed: u64) -> GeneratedPage {
        let mut rng = StdRng::seed_from_u64(seed);
        generate(&mut rng, 0)
    }

    #[test]
    fn gold_tokens_present() {
        for seed in 0..20 {
            let p = page(seed);
            let tree = PageTree::parse(&p.html);
            let toks: std::collections::HashSet<_> = tokenize_all(
                &tree
                    .iter()
                    .map(|n| tree.text(n).to_string())
                    .collect::<Vec<_>>(),
            )
            .into_iter()
            .collect();
            for (task, golds) in &p.gold {
                for t in tokenize_all(golds) {
                    assert!(
                        toks.contains(&t),
                        "seed {seed} task {task}: token {t:?} missing"
                    );
                }
            }
        }
    }

    #[test]
    fn blind_gold_is_single_valued() {
        let p = page(3);
        assert_eq!(p.gold["conf_t5"].len(), 1);
        let v = &p.gold["conf_t5"][0];
        assert!(v == "double-blind" || v == "single-blind");
    }

    #[test]
    fn deadline_is_a_date() {
        let p = page(4);
        let d = &p.gold["conf_t4"][0];
        assert!(d.contains(','), "got {d}");
    }

    #[test]
    fn pc_members_match_institutions_count_or_fewer() {
        let p = page(5);
        // institutions are deduped, so ≤ member count
        assert!(p.gold["conf_t6"].len() <= p.gold["conf_t2"].len());
    }
}
