//! Shared generation helpers: seeded choice utilities and an HTML builder.

use rand::rngs::StdRng;
use rand::Rng;
use webqa_nlp::lexicon;

/// Picks one element uniformly.
pub(crate) fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

/// Picks `n` distinct elements (or all of them when `n ≥ len`), preserving
/// no particular order.
pub(crate) fn sample<'a, T>(rng: &mut StdRng, xs: &'a [T], n: usize) -> Vec<&'a T> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    // Partial Fisher–Yates.
    let take = n.min(xs.len());
    for i in 0..take {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..take].iter().map(|&i| &xs[i]).collect()
}

/// A fresh "First Last" person name.
pub(crate) fn person_name(rng: &mut StdRng) -> String {
    format!(
        "{} {}",
        pick(rng, lexicon::FIRST_NAMES),
        pick(rng, lexicon::LAST_NAMES)
    )
}

/// `n` distinct person names.
pub(crate) fn person_names(rng: &mut StdRng, n: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    let mut guard = 0;
    while out.len() < n && guard < n * 20 {
        let name = person_name(rng);
        if !out.contains(&name) {
            out.push(name);
        }
        guard += 1;
    }
    out
}

/// A university name in one of the common shapes.
pub(crate) fn university(rng: &mut StdRng) -> String {
    let place = pick(rng, lexicon::PLACES);
    match rng.gen_range(0..4) {
        0 => format!("{place} University"),
        1 => format!("University of {place}"),
        2 => format!("{place} Institute of Technology"),
        _ => format!("{place} College"),
    }
}

/// HTML text escaping for generated content.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Minimal HTML document builder used by all domain generators.
///
/// Every write escapes its text, so generated pages are well-formed by
/// construction and the corpus also exercises the parser's entity decoding.
#[derive(Debug, Default)]
pub(crate) struct HtmlDoc {
    body: String,
    title: String,
}

impl HtmlDoc {
    pub(crate) fn new(title: &str) -> Self {
        HtmlDoc {
            body: String::new(),
            title: title.to_string(),
        }
    }

    pub(crate) fn h1(&mut self, text: impl AsRef<str>) -> &mut Self {
        self.body
            .push_str(&format!("<h1>{}</h1>\n", escape(text.as_ref())));
        self
    }

    pub(crate) fn heading(&mut self, level: u8, text: impl AsRef<str>) -> &mut Self {
        let level = level.clamp(2, 6);
        self.body
            .push_str(&format!("<h{level}>{}</h{level}>\n", escape(text.as_ref())));
        self
    }

    pub(crate) fn bold_header(&mut self, text: impl AsRef<str>) -> &mut Self {
        self.body
            .push_str(&format!("<p><b>{}</b></p>\n", escape(text.as_ref())));
        self
    }

    pub(crate) fn p(&mut self, text: impl AsRef<str>) -> &mut Self {
        self.body
            .push_str(&format!("<p>{}</p>\n", escape(text.as_ref())));
        self
    }

    pub(crate) fn ul<S: AsRef<str>>(&mut self, items: &[S]) -> &mut Self {
        self.body.push_str("<ul>\n");
        for it in items {
            self.body
                .push_str(&format!("  <li>{}</li>\n", escape(it.as_ref())));
        }
        self.body.push_str("</ul>\n");
        self
    }

    pub(crate) fn table(&mut self, rows: &[(String, String)]) -> &mut Self {
        self.body.push_str("<table>\n");
        for (k, v) in rows {
            self.body.push_str(&format!(
                "  <tr><td>{}</td><td>{}</td></tr>\n",
                escape(k),
                escape(v)
            ));
        }
        self.body.push_str("</table>\n");
        self
    }

    pub(crate) fn finish(self) -> String {
        format!(
            "<!DOCTYPE html>\n<html><head><title>{}</title></head>\n<body>\n{}</body></html>\n",
            escape(&self.title),
            self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_is_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = [1, 2, 3, 4, 5];
        let s = sample(&mut rng, &xs, 3);
        assert_eq!(s.len(), 3);
        let mut v: Vec<i32> = s.into_iter().copied().collect();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn sample_caps_at_len() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample(&mut rng, &[1, 2], 10).len(), 2);
    }

    #[test]
    fn person_names_distinct() {
        let mut rng = StdRng::seed_from_u64(2);
        let names = person_names(&mut rng, 12);
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a & b < c"), "a &amp; b &lt; c");
    }

    #[test]
    fn builder_produces_parsable_html() {
        let mut d = HtmlDoc::new("T");
        d.h1("Root & More");
        d.heading(2, "Section");
        d.ul(&["a", "b"]);
        d.table(&[("k".into(), "v".into())]);
        let html = d.finish();
        let page = webqa_html::PageTree::parse(&html);
        assert_eq!(page.text(page.root()), "Root & More");
        assert!(page.len() > 4);
    }
}
