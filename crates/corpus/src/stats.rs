//! Corpus statistics: quantifying the structural heterogeneity the
//! evaluation depends on.
//!
//! The paper's motivating claim (Sections 1–2) is that the target
//! websites have *no shared global schema* — which is exactly why XPath
//! wrapper induction fails on them. Since this reproduction generates its
//! corpus, that property must be demonstrable rather than assumed. This
//! module computes per-domain structural statistics (node counts, depth,
//! section-title vocabulary, schema signatures) so tests and docs can
//! assert the generators actually produce template mixtures, and so users
//! can audit a corpus at a glance (`webqa-cli corpus` consumes the
//! per-page numbers).

use std::collections::BTreeSet;

use webqa_html::{NodeKind, PageTree};

use crate::gen::GeneratedPage;
use crate::tasks::Domain;

/// Structural statistics of a set of pages from one domain.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct DomainStats {
    /// The domain the pages were generated from.
    pub domain: Domain,
    /// Number of pages summarized.
    pub pages: usize,
    /// Minimum / mean / maximum page-tree node count.
    pub nodes: MinMeanMax,
    /// Minimum / mean / maximum tree depth.
    pub depth: MinMeanMax,
    /// Number of distinct top-level section titles across all pages.
    pub distinct_section_titles: usize,
    /// Number of distinct *schema signatures* (see
    /// [`schema_signature`]) across all pages. A schemaless corpus has
    /// many; a rigid one (what wrapper induction wants) has one.
    pub distinct_schemas: usize,
    /// Fraction of pages containing at least one list or table node.
    pub structured_fraction: f64,
}

/// A minimum / mean / maximum summary.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct MinMeanMax {
    /// Smallest observed value.
    pub min: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest observed value.
    pub max: usize,
}

impl MinMeanMax {
    fn of(values: &[usize]) -> MinMeanMax {
        assert!(!values.is_empty(), "summary of an empty sample");
        MinMeanMax {
            min: *values.iter().min().expect("non-empty"),
            mean: values.iter().sum::<usize>() as f64 / values.len() as f64,
            max: *values.iter().max().expect("non-empty"),
        }
    }
}

/// The *schema signature* of a page: its top-level section titles in
/// order, joined with `|`. Pages sharing a signature have the same
/// section layout — the "global schema" that wrapper induction exploits
/// and that this corpus deliberately lacks.
pub fn schema_signature(tree: &PageTree) -> String {
    let root = tree.root();
    tree.children(root)
        .iter()
        .map(|&c| tree.text(c).trim().to_lowercase())
        .collect::<Vec<_>>()
        .join("|")
}

/// Computes statistics over generated pages.
///
/// # Panics
///
/// Panics if `pages` is empty.
pub fn domain_stats(domain: Domain, pages: &[GeneratedPage]) -> DomainStats {
    assert!(!pages.is_empty(), "stats of an empty page set");
    let trees: Vec<PageTree> = pages.iter().map(GeneratedPage::tree).collect();
    let node_counts: Vec<usize> = trees.iter().map(PageTree::len).collect();
    let depths: Vec<usize> = trees
        .iter()
        .map(|t| t.iter().map(|n| t.depth(n)).max().unwrap_or(0))
        .collect();
    let mut titles: BTreeSet<String> = BTreeSet::new();
    let mut schemas: BTreeSet<String> = BTreeSet::new();
    let mut structured = 0usize;
    for t in &trees {
        let root = t.root();
        for &c in t.children(root) {
            titles.insert(t.text(c).trim().to_lowercase());
        }
        schemas.insert(schema_signature(t));
        if t.iter()
            .any(|n| matches!(t.kind(n), NodeKind::List | NodeKind::Table))
        {
            structured += 1;
        }
    }
    DomainStats {
        domain,
        pages: pages.len(),
        nodes: MinMeanMax::of(&node_counts),
        depth: MinMeanMax::of(&depths),
        distinct_section_titles: titles.len(),
        distinct_schemas: schemas.len(),
        structured_fraction: structured as f64 / pages.len() as f64,
    }
}

impl std::fmt::Display for DomainStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}: {} pages, nodes {}–{:.0}–{}, depth {}–{:.1}–{}, \
             {} section titles, {} schemas, {:.0}% structured",
            self.domain,
            self.pages,
            self.nodes.min,
            self.nodes.mean,
            self.nodes.max,
            self.depth.min,
            self.depth.mean,
            self.depth.max,
            self.distinct_section_titles,
            self.distinct_schemas,
            self.structured_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_pages;

    #[test]
    fn min_mean_max_summary() {
        let m = MinMeanMax::of(&[3, 5, 10]);
        assert_eq!(m.min, 3);
        assert_eq!(m.max, 10);
        assert!((m.mean - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_of_nothing_panics() {
        let _ = MinMeanMax::of(&[]);
    }

    #[test]
    fn every_domain_is_heterogeneous() {
        // The motivating property: with 20 pages, each domain exhibits
        // several distinct schemas — there is no global layout for an
        // XPath wrapper to lock onto.
        for domain in Domain::ALL {
            let pages = generate_pages(domain, 20, 7);
            let s = domain_stats(domain, &pages);
            assert!(
                s.distinct_schemas >= 5,
                "{domain:?} produced only {} schemas across 20 pages",
                s.distinct_schemas
            );
            assert!(
                s.distinct_section_titles > 5,
                "{domain:?} section-title vocabulary too small: {}",
                s.distinct_section_titles
            );
            assert!(s.nodes.min >= 3, "{domain:?} degenerate page");
            assert!(s.depth.max >= 2, "{domain:?} flat pages only");
        }
    }

    #[test]
    fn domains_use_structured_markup() {
        // Lists/tables are what `isElem` and the HYB baseline exercise;
        // a meaningful fraction of pages must contain them.
        for domain in Domain::ALL {
            let pages = generate_pages(domain, 20, 3);
            let s = domain_stats(domain, &pages);
            assert!(
                s.structured_fraction > 0.3,
                "{domain:?}: only {:.0}% of pages have list/table structure",
                s.structured_fraction * 100.0
            );
        }
    }

    #[test]
    fn schema_signature_reflects_section_layout() {
        let a = PageTree::parse("<h1>X</h1><h2>Students</h2><p>a</p><h2>Service</h2><p>b</p>");
        let b = PageTree::parse("<h1>Y</h1><h2>Students</h2><p>c</p><h2>Service</h2><p>d</p>");
        let c = PageTree::parse("<h1>Z</h1><h2>Teaching</h2><p>e</p>");
        assert_eq!(schema_signature(&a), schema_signature(&b));
        assert_ne!(schema_signature(&a), schema_signature(&c));
    }

    #[test]
    fn display_is_informative() {
        let pages = generate_pages(Domain::Clinic, 5, 0);
        let text = domain_stats(Domain::Clinic, &pages).to_string();
        assert!(text.contains("Clinic"), "{text}");
        assert!(text.contains("schemas"), "{text}");
    }
}
