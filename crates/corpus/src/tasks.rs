//! The 25 evaluation tasks of the paper (Table 1 / Table 5).
//!
//! Each task is a (question, keywords) query over one of the four domains.
//! Questions and keywords are verbatim from the paper's Table 5.

/// The four evaluation domains (Section 8).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Domain {
    /// Faculty homepages.
    Faculty,
    /// Computer-science conference sites.
    Conference,
    /// University course pages.
    Class,
    /// Clinic websites.
    Clinic,
}

impl Domain {
    /// All four domains in the paper's order.
    pub const ALL: [Domain; 4] = [
        Domain::Faculty,
        Domain::Conference,
        Domain::Class,
        Domain::Clinic,
    ];
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Domain::Faculty => "Faculty",
            Domain::Conference => "Conference",
            Domain::Class => "Class",
            Domain::Clinic => "Clinic",
        })
    }
}

/// One evaluation task: a natural-language question plus keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct Task {
    /// Stable identifier, e.g. `"fac_t5"`.
    pub id: &'static str,
    /// The domain the task runs over.
    pub domain: Domain,
    /// The natural-language question (Table 5).
    pub question: &'static str,
    /// The keyword set (Table 5).
    pub keywords: &'static [&'static str],
}

/// All 25 tasks, verbatim from Table 5 of the paper.
pub const TASKS: [Task; 25] = [
    // ---- Faculty -------------------------------------------------------
    Task {
        id: "fac_t1",
        domain: Domain::Faculty,
        question: "Who are the current PhD students?",
        keywords: &["Current Students", "PhD"],
    },
    Task {
        id: "fac_t2",
        domain: Domain::Faculty,
        question: "What are the conference publications at PLDI?",
        keywords: &["Conference Publications", "PLDI"],
    },
    Task {
        id: "fac_t3",
        domain: Domain::Faculty,
        question: "What courses does this person teach?",
        keywords: &["Courses", "Teaching"],
    },
    Task {
        id: "fac_t4",
        domain: Domain::Faculty,
        question: "What are the the papers that received the Best Paper Award?",
        keywords: &["Conference Publications", "Best Paper Award"],
    },
    Task {
        id: "fac_t5",
        domain: Domain::Faculty,
        question: "What program committees or PC has this person served for?",
        keywords: &["Program Committee", "PC"],
    },
    Task {
        id: "fac_t6",
        domain: Domain::Faculty,
        question: "What conference papers have been published in 2012?",
        keywords: &["Conference Publications", "2012"],
    },
    Task {
        id: "fac_t7",
        domain: Domain::Faculty,
        question: "Who are the co-authors among all papers published at PLDI?",
        keywords: &["Conference Publications", "PLDI"],
    },
    Task {
        id: "fac_t8",
        domain: Domain::Faculty,
        question: "Who are the alumni or formerly advised students?",
        keywords: &["Alumni", "Former Students"],
    },
    // ---- Conference ----------------------------------------------------
    Task {
        id: "conf_t1",
        domain: Domain::Conference,
        question: "Who are the program chairs or co-chairs?",
        keywords: &["Program Chair", "Program Co-chair", "PC Chair"],
    },
    Task {
        id: "conf_t2",
        domain: Domain::Conference,
        question: "Who are the program committee (PC) members?",
        keywords: &["Program Committee", "PC"],
    },
    Task {
        id: "conf_t3",
        domain: Domain::Conference,
        question: "What are the topics of interest?",
        keywords: &["Topics"],
    },
    Task {
        id: "conf_t4",
        domain: Domain::Conference,
        question: "When is the paper submission deadline?",
        keywords: &["Paper Submission Deadline"],
    },
    Task {
        id: "conf_t5",
        domain: Domain::Conference,
        question: "Is this conference double-blind or single-blind?",
        keywords: &["Double-blind", "Single-blind"],
    },
    Task {
        id: "conf_t6",
        domain: Domain::Conference,
        question: "What institutions are the program committee or PC members from?",
        keywords: &["Program Committee", "PC"],
    },
    // ---- Class ---------------------------------------------------------
    Task {
        id: "class_t1",
        domain: Domain::Class,
        question: "When are the lectures or sections?",
        keywords: &["Section", "Lecture"],
    },
    Task {
        id: "class_t2",
        domain: Domain::Class,
        question: "Who are the instructors?",
        keywords: &["Instructors"],
    },
    Task {
        id: "class_t3",
        domain: Domain::Class,
        question: "Who are the teaching assistants (TAs)?",
        keywords: &["Teaching Assistants", "TAs"],
    },
    Task {
        id: "class_t4",
        domain: Domain::Class,
        question: "When are the midterms or exams?",
        keywords: &["Exam", "Midterm", "Test"],
    },
    Task {
        id: "class_t5",
        domain: Domain::Class,
        question: "What are the textbooks?",
        keywords: &["Textbooks", "Materials", "Required Texts"],
    },
    Task {
        id: "class_t6",
        domain: Domain::Class,
        question: "How are the grades counted in this class?",
        keywords: &["Grades", "Grading", "Rubric"],
    },
    // ---- Clinic --------------------------------------------------------
    Task {
        id: "clinic_t1",
        domain: Domain::Clinic,
        question: "Who are the doctors or providers?",
        keywords: &["Doctor", "Provider", "Our Team"],
    },
    Task {
        id: "clinic_t2",
        domain: Domain::Clinic,
        question: "What types of service do they provide?",
        keywords: &["Our Services"],
    },
    Task {
        id: "clinic_t3",
        domain: Domain::Clinic,
        question: "What types of treatments do they specialize in?",
        keywords: &["Treatments", "Specialties"],
    },
    Task {
        id: "clinic_t4",
        domain: Domain::Clinic,
        question: "What insurance plan do they accept?",
        keywords: &["Insurance", "Plans Accepted"],
    },
    Task {
        id: "clinic_t5",
        domain: Domain::Clinic,
        question: "Where are the clinics located?",
        keywords: &["Locations"],
    },
];

/// Looks up a task by its id.
pub fn task_by_id(id: &str) -> Option<&'static Task> {
    TASKS.iter().find(|t| t.id == id)
}

/// All tasks belonging to `domain`, in Table 5 order.
pub fn tasks_in_domain(domain: Domain) -> Vec<&'static Task> {
    TASKS.iter().filter(|t| t.domain == domain).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_five_tasks_across_four_domains() {
        assert_eq!(TASKS.len(), 25);
        assert_eq!(tasks_in_domain(Domain::Faculty).len(), 8);
        assert_eq!(tasks_in_domain(Domain::Conference).len(), 6);
        assert_eq!(tasks_in_domain(Domain::Class).len(), 6);
        assert_eq!(tasks_in_domain(Domain::Clinic).len(), 5);
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = TASKS.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), TASKS.len());
    }

    #[test]
    fn every_task_has_question_and_keywords() {
        for t in &TASKS {
            assert!(
                t.question.ends_with('?'),
                "{} question should be interrogative",
                t.id
            );
            assert!(!t.keywords.is_empty(), "{} needs keywords", t.id);
        }
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(task_by_id("fac_t5").unwrap().domain, Domain::Faculty);
        assert!(task_by_id("nope").is_none());
    }
}
