//! # webqa-corpus
//!
//! Synthetic evaluation corpus for the WebQA reproduction.
//!
//! The paper evaluates on 25 tasks over ~160 scraped webpages across four
//! domains (faculty, conference, class, clinic — Section 8, Table 1/5).
//! Scraped pages are not redistributable, so this crate provides *seeded
//! generative models* of each domain producing exactly the property the
//! evaluation depends on: **structural heterogeneity without a shared
//! schema** (template mixtures, randomized section titles and orderings,
//! list/table/paragraph formatting variants) with ground truth known by
//! construction.
//!
//! ```
//! use webqa_corpus::{Corpus, task_by_id};
//!
//! let corpus = Corpus::generate(8, 42);
//! let task = task_by_id("fac_t1").unwrap(); // "Who are the current PhD students?"
//! let data = corpus.dataset(task, 5);
//! assert_eq!(data.train.len(), 5);
//! assert_eq!(data.test.len(), 3);
//! // Gold labels are attached to every page:
//! assert!(data.train.iter().any(|p| !p.gold.is_empty()));
//! ```

#![warn(missing_docs)]

mod dataset;
mod gen;
pub mod stats;
mod tasks;

pub use dataset::{
    Corpus, LabeledPage, TaskDataset, DEFAULT_PAGES_PER_DOMAIN, DEFAULT_TRAIN_PAGES,
};
pub use gen::{generate_pages, GeneratedPage};
pub use stats::{domain_stats, schema_signature, DomainStats, MinMeanMax};
pub use tasks::{task_by_id, tasks_in_domain, Domain, Task, TASKS};
