//! Property-based tests for the DSL.
//!
//! The two load-bearing properties:
//!
//! 1. **Round-trip**: `parse(display(p)) == p` for arbitrary programs —
//!    the canonical text format is faithful.
//! 2. **Recall monotonicity** (Theorem A.3 of the paper): applying any
//!    extractor production can only *shrink* the output token bag, which
//!    is what makes the `UB = 2R/(1+R)` pruning sound.

use proptest::prelude::*;
use webqa_dsl::{
    EntityKind, Extractor, Guard, Locator, NlpPred, NodeFilter, PageTree, Program, QueryContext,
    Threshold,
};

fn entity_kind() -> impl Strategy<Value = EntityKind> {
    prop_oneof![
        Just(EntityKind::Person),
        Just(EntityKind::Organization),
        Just(EntityKind::Date),
        Just(EntityKind::Time),
        Just(EntityKind::Location),
        Just(EntityKind::Money),
    ]
}

fn nlp_pred() -> impl Strategy<Value = NlpPred> {
    let leaf = prop_oneof![
        (0u8..=20).prop_map(|n| NlpPred::MatchKeyword(Threshold::new(f64::from(n) * 0.05))),
        Just(NlpPred::HasAnswer),
        entity_kind().prop_map(NlpPred::HasEntity),
        Just(NlpPred::True),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| NlpPred::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| NlpPred::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| NlpPred::Not(Box::new(a))),
        ]
    })
}

fn node_filter() -> impl Strategy<Value = NodeFilter> {
    let leaf = prop_oneof![
        Just(NodeFilter::IsLeaf),
        Just(NodeFilter::IsElem),
        Just(NodeFilter::True),
        (nlp_pred(), any::<bool>())
            .prop_map(|(pred, subtree)| NodeFilter::MatchText { pred, subtree }),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| NodeFilter::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| NodeFilter::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| NodeFilter::Not(Box::new(a))),
        ]
    })
}

fn locator() -> impl Strategy<Value = Locator> {
    Just(Locator::Root).prop_recursive(3, 6, 1, |inner| {
        prop_oneof![
            (inner.clone(), node_filter()).prop_map(|(l, f)| Locator::Children(Box::new(l), f)),
            (inner, node_filter()).prop_map(|(l, f)| Locator::Descendants(Box::new(l), f)),
        ]
    })
}

fn guard() -> impl Strategy<Value = Guard> {
    prop_oneof![
        (locator(), nlp_pred()).prop_map(|(l, p)| Guard::Sat(l, p)),
        locator().prop_map(Guard::IsSingleton),
    ]
}

fn extractor() -> impl Strategy<Value = Extractor> {
    Just(Extractor::Content).prop_recursive(3, 8, 1, |inner| {
        prop_oneof![
            (inner.clone(), nlp_pred(), 1usize..4).prop_map(|(e, p, k)| Extractor::Substring(
                Box::new(e),
                p,
                k
            )),
            (inner.clone(), nlp_pred()).prop_map(|(e, p)| Extractor::Filter(Box::new(e), p)),
            (
                inner,
                prop_oneof![Just(','), Just(';'), Just(':'), Just('|')]
            )
                .prop_map(|(e, c)| Extractor::Split(Box::new(e), c)),
        ]
    })
}

fn program() -> impl Strategy<Value = Program> {
    proptest::collection::vec((guard(), extractor()), 1..3).prop_map(|bs| {
        Program::new(
            bs.into_iter()
                .map(|(g, e)| webqa_dsl::Branch::new(g, e))
                .collect(),
        )
    })
}

fn sample_page() -> PageTree {
    PageTree::parse(
        "<h1>Jane Doe</h1>\
         <h2>Students</h2><b>PhD students</b>\
         <ul><li>Robert Smith</li><li>Mary Anderson</li></ul>\
         <h2>Service</h2>\
         <ul><li>PLDI '21 (PC), CAV '20 (PC)</li><li>POPL '20 (SRC)</li></ul>\
         <h2>Contact</h2><p>jane@cs.edu, Austin, office 4.412</p>",
    )
}

fn ctx() -> QueryContext {
    QueryContext::new("Who are the PhD students?", ["students", "PC"])
}

/// Multiset of scoring tokens for an output.
fn token_bag(out: &[String]) -> Vec<webqa_metrics::Token> {
    let mut t = webqa_metrics::tokenize_all(out);
    t.sort();
    t
}

/// `a ⊆ b` as multisets.
fn is_subbag(a: &[webqa_metrics::Token], b: &[webqa_metrics::Token]) -> bool {
    let mut counts = std::collections::HashMap::new();
    for t in b {
        *counts.entry(t).or_insert(0usize) += 1;
    }
    for t in a {
        match counts.get_mut(t) {
            Some(c) if *c > 0 => *c -= 1,
            _ => return false,
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn display_parse_roundtrip(p in program()) {
        let printed = p.to_string();
        let reparsed: Program = printed.parse().expect("canonical form must parse");
        prop_assert_eq!(p, reparsed);
    }

    #[test]
    fn evaluation_is_total_and_deterministic(p in program()) {
        let page = sample_page();
        let c = ctx();
        let out1 = p.eval(&c, &page);
        let out2 = p.eval(&c, &page);
        prop_assert_eq!(out1, out2);
    }

    #[test]
    fn program_output_is_a_set(p in program()) {
        let page = sample_page();
        let out = p.eval(&ctx(), &page);
        let mut dedup = out.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(out.len(), dedup.len());
    }

    /// Theorem A.3: every extractor production shrinks the token bag.
    #[test]
    fn extractor_productions_are_recall_monotone(
        e in extractor(),
        pred in nlp_pred(),
        k in 1usize..3,
        delim in prop_oneof![Just(','), Just(';')],
    ) {
        let page = sample_page();
        let c = ctx();
        let nodes = Locator::leaves(Locator::Root).eval(&c, &page);
        let base = e.eval(&c, &page, &nodes);
        let base_bag = token_bag(&base);
        let extensions = [
            Extractor::Substring(Box::new(e.clone()), pred.clone(), k),
            Extractor::Filter(Box::new(e.clone()), pred),
            Extractor::Split(Box::new(e), delim),
        ];
        for ext in extensions {
            let out = ext.eval(&c, &page, &nodes);
            let bag = token_bag(&out);
            prop_assert!(
                is_subbag(&bag, &base_bag),
                "extension {} produced tokens outside its parent's bag",
                ext
            );
        }
    }

    /// Locator extension shrinkage: children/descendants of located nodes
    /// are a subset of all descendants — the locator-level monotonicity the
    /// guard-synthesis UB relies on.
    #[test]
    fn locator_filters_shrink_results(l in locator(), f in node_filter()) {
        let page = sample_page();
        let c = ctx();
        let filtered = Locator::Descendants(Box::new(l.clone()), f).eval(&c, &page);
        let unfiltered = Locator::Descendants(Box::new(l), NodeFilter::True).eval(&c, &page);
        for n in &filtered {
            prop_assert!(unfiltered.contains(n));
        }
    }

    #[test]
    fn guard_eval_consistent_with_locator(g in guard()) {
        let page = sample_page();
        let c = ctx();
        let (fired, nodes) = g.eval(&c, &page);
        let located = g.locator().eval(&c, &page);
        prop_assert_eq!(nodes, located.clone());
        if let Guard::IsSingleton(_) = g {
            prop_assert_eq!(fired, located.len() == 1);
        }
    }

    #[test]
    fn paper_syntax_never_panics(p in program()) {
        let s = p.to_paper_syntax();
        prop_assert!(s.starts_with("λQ,K,W."));
    }
}
