//! Abstract syntax of the WebQA DSL (Figure 5 of the paper).
//!
//! ```text
//! Program   p ::= λQ,K,W. {ψ₁ → λx.e₁, …, ψₙ → λx.eₙ}
//! Guard     ψ ::= Sat(ν, λz.φ) | IsSingleton(ν)
//! Extractor e ::= ExtractContent(x) | Substring(e, λz.φ, k)
//!               | Filter(e, λz.φ) | Split(e, c)
//! Locator   ν ::= GetRoot(W) | GetChildren(ν, λn.φ) | GetDescendants(ν, λn.φ)
//! NodeFilter φ ::= isLeaf(n) | isElem(n) | matchText(n, λz.φ, b)
//!               | ⊤ | φ∧φ | φ∨φ | ¬φ
//! NLP pred  φ ::= matchKeyword(z, K, t) | hasAnswer(z, Q) | hasEntity(z, l)
//!               | ⊤ | φ∧φ | φ∨φ | ¬φ
//! ```
//!
//! All types implement `Eq + Hash` so the synthesizer can memoize and
//! deduplicate; thresholds are therefore stored in fixed-point hundredths
//! ([`Threshold`]).

use webqa_nlp::EntityKind;

/// A keyword-similarity threshold `t ∈ [0, 1]`, stored in hundredths so DSL
/// terms are `Eq + Hash` (the paper discretizes thresholds with step 0.05).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Threshold(u8);

impl Threshold {
    /// Creates a threshold, clamping to `[0, 1]` and rounding to
    /// hundredths.
    pub fn new(t: f64) -> Self {
        Threshold((t.clamp(0.0, 1.0) * 100.0).round() as u8)
    }

    /// The threshold value in `[0, 1]`.
    pub fn value(self) -> f64 {
        f64::from(self.0) / 100.0
    }
}

impl std::fmt::Display for Threshold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}", self.value())
    }
}

/// NLP predicates `φ` over strings — the neural leaves of the DSL.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NlpPred {
    /// `matchKeyword(z, K, t)`: semantic similarity of `z` to some keyword
    /// in the query context exceeds `t`.
    MatchKeyword(Threshold),
    /// `hasAnswer(z, Q)`: the QA model finds the question's answer in `z`.
    HasAnswer,
    /// `hasEntity(z, l)`: `z` contains an entity of kind `l`.
    HasEntity(EntityKind),
    /// `⊤`.
    True,
    /// Conjunction.
    And(Box<NlpPred>, Box<NlpPred>),
    /// Disjunction.
    Or(Box<NlpPred>, Box<NlpPred>),
    /// Negation.
    Not(Box<NlpPred>),
}

impl NlpPred {
    /// AST size (number of constructors).
    pub fn size(&self) -> usize {
        match self {
            NlpPred::MatchKeyword(_)
            | NlpPred::HasAnswer
            | NlpPred::HasEntity(_)
            | NlpPred::True => 1,
            NlpPred::And(a, b) | NlpPred::Or(a, b) => 1 + a.size() + b.size(),
            NlpPred::Not(a) => 1 + a.size(),
        }
    }

    /// AST depth.
    pub fn depth(&self) -> usize {
        match self {
            NlpPred::MatchKeyword(_)
            | NlpPred::HasAnswer
            | NlpPred::HasEntity(_)
            | NlpPred::True => 1,
            NlpPred::And(a, b) | NlpPred::Or(a, b) => 1 + a.depth().max(b.depth()),
            NlpPred::Not(a) => 1 + a.depth(),
        }
    }

    /// Whether the predicate mentions `matchKeyword` (keyword modality).
    pub fn uses_keywords(&self) -> bool {
        match self {
            NlpPred::MatchKeyword(_) => true,
            NlpPred::HasAnswer | NlpPred::HasEntity(_) | NlpPred::True => false,
            NlpPred::And(a, b) | NlpPred::Or(a, b) => a.uses_keywords() || b.uses_keywords(),
            NlpPred::Not(a) => a.uses_keywords(),
        }
    }

    /// Whether the predicate mentions `hasAnswer` (question modality).
    pub fn uses_question(&self) -> bool {
        match self {
            NlpPred::HasAnswer => true,
            NlpPred::MatchKeyword(_) | NlpPred::HasEntity(_) | NlpPred::True => false,
            NlpPred::And(a, b) | NlpPred::Or(a, b) => a.uses_question() || b.uses_question(),
            NlpPred::Not(a) => a.uses_question(),
        }
    }
}

/// Node filters `φ` over page-tree nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeFilter {
    /// `isLeaf(n)`.
    IsLeaf,
    /// `isElem(n)`: `n` is a list element or table row.
    IsElem,
    /// `matchText(n, λz.φ, b)`: the node's own text (`b = false`) or entire
    /// subtree text (`b = true`) satisfies the NLP predicate.
    MatchText {
        /// The NLP predicate applied to the text.
        pred: NlpPred,
        /// Whether to use the whole subtree's text.
        subtree: bool,
    },
    /// `⊤`.
    True,
    /// Conjunction.
    And(Box<NodeFilter>, Box<NodeFilter>),
    /// Disjunction.
    Or(Box<NodeFilter>, Box<NodeFilter>),
    /// Negation.
    Not(Box<NodeFilter>),
}

impl NodeFilter {
    /// AST size.
    pub fn size(&self) -> usize {
        match self {
            NodeFilter::IsLeaf | NodeFilter::IsElem | NodeFilter::True => 1,
            NodeFilter::MatchText { pred, .. } => 1 + pred.size(),
            NodeFilter::And(a, b) | NodeFilter::Or(a, b) => 1 + a.size() + b.size(),
            NodeFilter::Not(a) => 1 + a.size(),
        }
    }

    /// AST depth.
    pub fn depth(&self) -> usize {
        match self {
            NodeFilter::IsLeaf | NodeFilter::IsElem | NodeFilter::True => 1,
            NodeFilter::MatchText { pred, .. } => 1 + pred.depth(),
            NodeFilter::And(a, b) | NodeFilter::Or(a, b) => 1 + a.depth().max(b.depth()),
            NodeFilter::Not(a) => 1 + a.depth(),
        }
    }

    /// Whether any nested predicate uses keywords.
    pub fn uses_keywords(&self) -> bool {
        match self {
            NodeFilter::MatchText { pred, .. } => pred.uses_keywords(),
            NodeFilter::IsLeaf | NodeFilter::IsElem | NodeFilter::True => false,
            NodeFilter::And(a, b) | NodeFilter::Or(a, b) => a.uses_keywords() || b.uses_keywords(),
            NodeFilter::Not(a) => a.uses_keywords(),
        }
    }

    /// Whether any nested predicate uses the question.
    pub fn uses_question(&self) -> bool {
        match self {
            NodeFilter::MatchText { pred, .. } => pred.uses_question(),
            NodeFilter::IsLeaf | NodeFilter::IsElem | NodeFilter::True => false,
            NodeFilter::And(a, b) | NodeFilter::Or(a, b) => a.uses_question() || b.uses_question(),
            NodeFilter::Not(a) => a.uses_question(),
        }
    }
}

/// Section locators `ν`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Locator {
    /// `GetRoot(W)`.
    Root,
    /// `GetChildren(ν, λn.φ)`.
    Children(Box<Locator>, NodeFilter),
    /// `GetDescendants(ν, λn.φ)`.
    Descendants(Box<Locator>, NodeFilter),
}

impl Locator {
    /// `GetLeaves(ν)` sugar from the paper (footnote 2):
    /// `GetDescendants(ν, λn. isLeaf(n))`.
    pub fn leaves(inner: Locator) -> Locator {
        Locator::Descendants(Box::new(inner), NodeFilter::IsLeaf)
    }

    /// AST size.
    pub fn size(&self) -> usize {
        match self {
            Locator::Root => 1,
            Locator::Children(l, f) | Locator::Descendants(l, f) => 1 + l.size() + f.size(),
        }
    }

    /// AST depth (number of locator constructors on the spine).
    pub fn depth(&self) -> usize {
        match self {
            Locator::Root => 1,
            Locator::Children(l, _) | Locator::Descendants(l, _) => 1 + l.depth(),
        }
    }

    /// Whether any nested filter uses keywords.
    pub fn uses_keywords(&self) -> bool {
        match self {
            Locator::Root => false,
            Locator::Children(l, f) | Locator::Descendants(l, f) => {
                l.uses_keywords() || f.uses_keywords()
            }
        }
    }

    /// Whether any nested filter uses the question.
    pub fn uses_question(&self) -> bool {
        match self {
            Locator::Root => false,
            Locator::Children(l, f) | Locator::Descendants(l, f) => {
                l.uses_question() || f.uses_question()
            }
        }
    }
}

/// Guards `ψ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Guard {
    /// `Sat(ν, λz.φ)`: some located node's text satisfies `φ`.
    Sat(Locator, NlpPred),
    /// `IsSingleton(ν)`: exactly one node is located.
    IsSingleton(Locator),
}

impl Guard {
    /// The guard's section locator.
    pub fn locator(&self) -> &Locator {
        match self {
            Guard::Sat(l, _) | Guard::IsSingleton(l) => l,
        }
    }

    /// AST size.
    pub fn size(&self) -> usize {
        match self {
            Guard::Sat(l, p) => 1 + l.size() + p.size(),
            Guard::IsSingleton(l) => 1 + l.size(),
        }
    }

    /// Whether the guard uses keywords anywhere.
    pub fn uses_keywords(&self) -> bool {
        match self {
            Guard::Sat(l, p) => l.uses_keywords() || p.uses_keywords(),
            Guard::IsSingleton(l) => l.uses_keywords(),
        }
    }

    /// Whether the guard uses the question anywhere.
    pub fn uses_question(&self) -> bool {
        match self {
            Guard::Sat(l, p) => l.uses_question() || p.uses_question(),
            Guard::IsSingleton(l) => l.uses_question(),
        }
    }
}

/// Extractors `e`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Extractor {
    /// `ExtractContent(x)`: the text of each located node.
    Content,
    /// `Substring(e, λz.φ, k)`: the top-`k` substrings of each string that
    /// satisfy `φ`.
    Substring(Box<Extractor>, NlpPred, usize),
    /// `Filter(e, λz.φ)`: keep only strings satisfying `φ`.
    Filter(Box<Extractor>, NlpPred),
    /// `Split(e, c)`: split each string on the delimiter.
    Split(Box<Extractor>, char),
}

impl Extractor {
    /// `GetEntity(e, l)` sugar from the paper (footnote 3):
    /// `Substring(e, λz. hasEntity(z, l), 1)`.
    pub fn entity(inner: Extractor, kind: EntityKind) -> Extractor {
        Extractor::Substring(Box::new(inner), NlpPred::HasEntity(kind), 1)
    }

    /// AST size.
    pub fn size(&self) -> usize {
        match self {
            Extractor::Content => 1,
            Extractor::Substring(e, p, _) => 1 + e.size() + p.size(),
            Extractor::Filter(e, p) => 1 + e.size() + p.size(),
            Extractor::Split(e, _) => 1 + e.size(),
        }
    }

    /// AST depth (extractor constructors on the spine).
    pub fn depth(&self) -> usize {
        match self {
            Extractor::Content => 1,
            Extractor::Substring(e, _, _) | Extractor::Filter(e, _) | Extractor::Split(e, _) => {
                1 + e.depth()
            }
        }
    }

    /// The immediate sub-extractor, if any.
    pub fn inner(&self) -> Option<&Extractor> {
        match self {
            Extractor::Content => None,
            Extractor::Substring(e, _, _) | Extractor::Filter(e, _) | Extractor::Split(e, _) => {
                Some(e)
            }
        }
    }

    /// Whether the extractor uses keywords anywhere.
    pub fn uses_keywords(&self) -> bool {
        match self {
            Extractor::Content => false,
            Extractor::Substring(e, p, _) | Extractor::Filter(e, p) => {
                e.uses_keywords() || p.uses_keywords()
            }
            Extractor::Split(e, _) => e.uses_keywords(),
        }
    }

    /// Whether the extractor uses the question anywhere.
    pub fn uses_question(&self) -> bool {
        match self {
            Extractor::Content => false,
            Extractor::Substring(e, p, _) | Extractor::Filter(e, p) => {
                e.uses_question() || p.uses_question()
            }
            Extractor::Split(e, _) => e.uses_question(),
        }
    }
}

/// One guarded branch `ψ → λx.e`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Branch {
    /// The guard.
    pub guard: Guard,
    /// The extractor applied when the guard fires.
    pub extractor: Extractor,
}

impl Branch {
    /// Creates a branch.
    pub fn new(guard: Guard, extractor: Extractor) -> Self {
        Branch { guard, extractor }
    }

    /// AST size.
    pub fn size(&self) -> usize {
        self.guard.size() + self.extractor.size()
    }
}

/// A complete WebQA program: an ordered sequence of guarded branches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program {
    /// Branches tried in order; the first true guard's extractor runs.
    pub branches: Vec<Branch>,
}

impl Program {
    /// Creates a program from branches.
    pub fn new(branches: Vec<Branch>) -> Self {
        Program { branches }
    }

    /// A single-branch program.
    pub fn single(guard: Guard, extractor: Extractor) -> Self {
        Program {
            branches: vec![Branch::new(guard, extractor)],
        }
    }

    /// AST size (used by the `Shortest` selection baseline, Section 8.3).
    pub fn size(&self) -> usize {
        self.branches.iter().map(Branch::size).sum()
    }

    /// Whether any component uses keywords.
    pub fn uses_keywords(&self) -> bool {
        self.branches
            .iter()
            .any(|b| b.guard.uses_keywords() || b.extractor.uses_keywords())
    }

    /// Whether any component uses the question.
    pub fn uses_question(&self) -> bool {
        self.branches
            .iter()
            .any(|b| b.guard.uses_question() || b.extractor.uses_question())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        // GetLeaves(GetDescendants(r, λz. matchKeyword(z, K))) with the
        // motivating example's extractor (Eq. 1 + Eq. 2 of the paper).
        let locator = Locator::leaves(Locator::Descendants(
            Box::new(Locator::Root),
            NodeFilter::MatchText {
                pred: NlpPred::MatchKeyword(Threshold::new(0.8)),
                subtree: false,
            },
        ));
        let guard = Guard::Sat(locator, NlpPred::True);
        let extractor = Extractor::entity(
            Extractor::Filter(
                Box::new(Extractor::Split(Box::new(Extractor::Content), ',')),
                NlpPred::MatchKeyword(Threshold::new(0.6)),
            ),
            EntityKind::Organization,
        );
        Program::single(guard, extractor)
    }

    #[test]
    fn threshold_fixed_point() {
        assert_eq!(Threshold::new(0.75).value(), 0.75);
        assert_eq!(Threshold::new(0.754).value(), 0.75);
        assert_eq!(Threshold::new(1.7).value(), 1.0);
        assert_eq!(Threshold::new(-0.2).value(), 0.0);
        assert_eq!(Threshold::new(0.05).to_string(), "0.05");
    }

    #[test]
    fn sizes_and_depths() {
        let p = sample_program();
        assert!(p.size() > 8);
        let b = &p.branches[0];
        assert_eq!(b.extractor.depth(), 4); // entity(filter(split(content)))
        assert_eq!(b.guard.locator().depth(), 3); // leaves(descendants(root))
    }

    #[test]
    fn sugar_expansions() {
        let leaves = Locator::leaves(Locator::Root);
        assert_eq!(
            leaves,
            Locator::Descendants(Box::new(Locator::Root), NodeFilter::IsLeaf)
        );
        let ge = Extractor::entity(Extractor::Content, EntityKind::Person);
        assert_eq!(
            ge,
            Extractor::Substring(
                Box::new(Extractor::Content),
                NlpPred::HasEntity(EntityKind::Person),
                1
            )
        );
    }

    #[test]
    fn modality_usage_flags() {
        let p = sample_program();
        assert!(p.uses_keywords());
        assert!(!p.uses_question());
        let q = Program::single(
            Guard::Sat(Locator::Root, NlpPred::HasAnswer),
            Extractor::Content,
        );
        assert!(q.uses_question());
        assert!(!q.uses_keywords());
    }

    #[test]
    fn extractor_inner_chain() {
        let p = sample_program();
        let mut e = &p.branches[0].extractor;
        let mut hops = 0;
        while let Some(inner) = e.inner() {
            e = inner;
            hops += 1;
        }
        assert_eq!(hops, 3);
        assert_eq!(e, &Extractor::Content);
    }

    #[test]
    fn programs_are_hashable_and_comparable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(sample_program());
        set.insert(sample_program());
        assert_eq!(set.len(), 1);
    }
}
