//! Semantics-preserving normalization of WebQA programs.
//!
//! The optimal-synthesis engine returns *every* program achieving the
//! optimal training F₁ (Theorem 5.1), and many of those differ only by
//! boolean-algebra noise (`φ ∧ ⊤`, `¬¬φ`, duplicated filters) or dead
//! branches. Normalizing canonicalizes such programs, which
//!
//! * shrinks the transductive ensemble without changing its output
//!   distribution (syntactically distinct but semantically equal programs
//!   collapse), and
//! * makes the selected program easier to read — the paper argues
//!   interpretability is a selling point of synthesizing a single program
//!   (Section 6).
//!
//! # Soundness
//!
//! NLP predicates have **two** semantics: boolean satisfaction
//! ([`NlpPred::eval`]) and span extraction ([`NlpPred::extract`], used by
//! `Substring`). Classical boolean laws hold only for the former — e.g.
//! `¬¬φ ≡ φ` is true for `eval` but false for `extract` (a negation
//! extracts nothing). The normalizer therefore tracks the *position* of
//! every predicate and rewrites only boolean positions:
//!
//! * guards `Sat(ν, φ)`, extractor `Filter(e, φ)`, and node-filter
//!   `matchText(n, φ, b)` predicates are boolean — fully normalized;
//! * a `Substring(e, φ, k)` predicate is extractive — left intact except
//!   for sub-positions that are themselves boolean (the right operand of
//!   `∧`, whose extraction semantics filters spans with `eval`).
//!
//! Extractor-level rules (`Filter(e, ⊤) → e`,
//! `Filter(Filter(e, p), q) → Filter(e, p ∧ q)`,
//! `Split(Split(e, c), c) → Split(e, c)`) and dead-branch elimination
//! (a branch whose guard syntactically equals an earlier branch's guard
//! can never fire) hold unconditionally.

use crate::ast::{Branch, Extractor, Guard, Locator, NlpPred, NodeFilter, Program};

/// Normalizes a program: boolean-position predicate simplification,
/// extractor simplification, and dead-branch elimination.
///
/// The result evaluates identically to the input on every page and
/// context (verified by property tests over the synthetic corpus).
///
/// ```
/// use webqa_dsl::{normalize, Program};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p: Program = "sat(root, true) -> filter(filter(content, kw(0.60)), true)".parse()?;
/// assert_eq!(normalize(&p).to_string(), "sat(root, true) -> filter(content, kw(0.60))");
/// # Ok(())
/// # }
/// ```
pub fn normalize(program: &Program) -> Program {
    let mut branches: Vec<Branch> = Vec::new();
    for b in &program.branches {
        let guard = normalize_guard(&b.guard);
        // A guard identical to an earlier one can never fire: the earlier
        // branch takes precedence whenever it would be true.
        if branches.iter().any(|prev| prev.guard == guard) {
            continue;
        }
        branches.push(Branch::new(guard, normalize_extractor(&b.extractor)));
    }
    Program::new(branches)
}

impl Program {
    /// Returns the [`normalize`]d form of this program.
    pub fn normalized(&self) -> Program {
        normalize(self)
    }
}

fn normalize_guard(g: &Guard) -> Guard {
    match g {
        Guard::Sat(l, p) => Guard::Sat(normalize_locator(l), normalize_bool_pred(p)),
        Guard::IsSingleton(l) => Guard::IsSingleton(normalize_locator(l)),
    }
}

fn normalize_locator(l: &Locator) -> Locator {
    match l {
        Locator::Root => Locator::Root,
        Locator::Children(inner, f) => {
            Locator::Children(Box::new(normalize_locator(inner)), normalize_filter(f))
        }
        Locator::Descendants(inner, f) => {
            Locator::Descendants(Box::new(normalize_locator(inner)), normalize_filter(f))
        }
    }
}

/// Node filters are always evaluated as booleans, so the full law set
/// applies.
fn normalize_filter(f: &NodeFilter) -> NodeFilter {
    match f {
        NodeFilter::IsLeaf | NodeFilter::IsElem | NodeFilter::True => f.clone(),
        NodeFilter::MatchText { pred, subtree } => NodeFilter::MatchText {
            pred: normalize_bool_pred(pred),
            subtree: *subtree,
        },
        NodeFilter::And(a, b) => {
            let (a, b) = (normalize_filter(a), normalize_filter(b));
            match (&a, &b) {
                (NodeFilter::True, _) => b,
                (_, NodeFilter::True) => a,
                _ if a == b => a,
                _ => NodeFilter::And(Box::new(a), Box::new(b)),
            }
        }
        NodeFilter::Or(a, b) => {
            let (a, b) = (normalize_filter(a), normalize_filter(b));
            match (&a, &b) {
                (NodeFilter::True, _) | (_, NodeFilter::True) => NodeFilter::True,
                _ if a == b => a,
                _ => NodeFilter::Or(Box::new(a), Box::new(b)),
            }
        }
        NodeFilter::Not(a) => {
            let a = normalize_filter(a);
            match a {
                NodeFilter::Not(inner) => *inner,
                _ => NodeFilter::Not(Box::new(a)),
            }
        }
    }
}

/// Normalizes a predicate in a *boolean* position, where `eval` semantics
/// license the classical laws.
fn normalize_bool_pred(p: &NlpPred) -> NlpPred {
    match p {
        NlpPred::MatchKeyword(_) | NlpPred::HasAnswer | NlpPred::HasEntity(_) | NlpPred::True => {
            p.clone()
        }
        NlpPred::And(a, b) => {
            let (a, b) = (normalize_bool_pred(a), normalize_bool_pred(b));
            match (&a, &b) {
                (NlpPred::True, _) => b,
                (_, NlpPred::True) => a,
                _ if a == b => a,
                _ => NlpPred::And(Box::new(a), Box::new(b)),
            }
        }
        NlpPred::Or(a, b) => {
            let (a, b) = (normalize_bool_pred(a), normalize_bool_pred(b));
            match (&a, &b) {
                (NlpPred::True, _) | (_, NlpPred::True) => NlpPred::True,
                _ if a == b => a,
                _ => NlpPred::Or(Box::new(a), Box::new(b)),
            }
        }
        NlpPred::Not(a) => {
            let a = normalize_bool_pred(a);
            match a {
                NlpPred::Not(inner) => *inner,
                _ => NlpPred::Not(Box::new(a)),
            }
        }
    }
}

/// Normalizes a predicate in an *extractive* position (`Substring`).
///
/// Only sub-positions that the extraction semantics evaluates as booleans
/// are rewritten: the right operand of `∧` (spans of the left operand are
/// filtered with `eval`). Everything else — including the identity of the
/// top-level constructor — is preserved, because extraction distinguishes
/// terms that boolean evaluation identifies.
fn normalize_extract_pred(p: &NlpPred) -> NlpPred {
    match p {
        NlpPred::MatchKeyword(_) | NlpPred::HasAnswer | NlpPred::HasEntity(_) | NlpPred::True => {
            p.clone()
        }
        NlpPred::And(a, b) => NlpPred::And(
            Box::new(normalize_extract_pred(a)),
            Box::new(normalize_bool_pred(b)),
        ),
        NlpPred::Or(a, b) => NlpPred::Or(
            Box::new(normalize_extract_pred(a)),
            Box::new(normalize_extract_pred(b)),
        ),
        // `¬φ` extracts nothing regardless of φ; keep it untouched (there
        // is no ⊥ form to rewrite to).
        NlpPred::Not(_) => p.clone(),
    }
}

fn normalize_extractor(e: &Extractor) -> Extractor {
    match e {
        Extractor::Content => Extractor::Content,
        Extractor::Substring(inner, p, k) => Extractor::Substring(
            Box::new(normalize_extractor(inner)),
            normalize_extract_pred(p),
            *k,
        ),
        Extractor::Filter(inner, p) => {
            let inner = normalize_extractor(inner);
            let p = normalize_bool_pred(p);
            if p == NlpPred::True {
                return inner;
            }
            // Filter(Filter(e, p), q) keeps strings satisfying p then q,
            // which is exactly Filter(e, p ∧ q).
            if let Extractor::Filter(grand, q) = inner {
                return Extractor::Filter(
                    grand,
                    normalize_bool_pred(&NlpPred::And(Box::new(q), Box::new(p))),
                );
            }
            Extractor::Filter(Box::new(inner), p)
        }
        Extractor::Split(inner, c) => {
            let inner = normalize_extractor(inner);
            // After Split(e, c) no output string contains c, so an
            // immediate re-split on the same delimiter is the identity.
            if let Extractor::Split(_, c2) = &inner {
                if c2 == c {
                    return inner;
                }
            }
            Extractor::Split(Box::new(inner), *c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::QueryContext;
    use crate::Threshold;
    use webqa_html::PageTree;
    use webqa_nlp::EntityKind;

    fn kw(t: f64) -> NlpPred {
        NlpPred::MatchKeyword(Threshold::new(t))
    }

    fn ctx() -> QueryContext {
        QueryContext::new("Who are the current PhD students?", ["Students", "PhD"])
    }

    fn page() -> PageTree {
        PageTree::parse(
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe, Bob Smith</li></ul>\
             <h2>Service</h2><p>PLDI '21 (PC)</p>",
        )
    }

    #[test]
    fn boolean_identities_collapse() {
        let p = NlpPred::And(Box::new(NlpPred::True), Box::new(kw(0.6)));
        assert_eq!(normalize_bool_pred(&p), kw(0.6));
        let p = NlpPred::Or(Box::new(kw(0.6)), Box::new(NlpPred::True));
        assert_eq!(normalize_bool_pred(&p), NlpPred::True);
        let p = NlpPred::Not(Box::new(NlpPred::Not(Box::new(kw(0.6)))));
        assert_eq!(normalize_bool_pred(&p), kw(0.6));
        let p = NlpPred::And(Box::new(kw(0.6)), Box::new(kw(0.6)));
        assert_eq!(normalize_bool_pred(&p), kw(0.6));
    }

    #[test]
    fn extractive_positions_are_preserved() {
        // ¬¬hasEntity extracts nothing; φ extracts spans — they must NOT
        // be identified in Substring position.
        let double_neg = NlpPred::Not(Box::new(NlpPred::Not(Box::new(NlpPred::HasEntity(
            EntityKind::Person,
        )))));
        let e = Extractor::Substring(Box::new(Extractor::Content), double_neg.clone(), 1);
        assert_eq!(normalize_extractor(&e), e, "extraction-position ¬¬φ kept");

        // And-left is extractive; And-right is boolean and simplifies.
        let p = NlpPred::And(
            Box::new(NlpPred::HasEntity(EntityKind::Person)),
            Box::new(NlpPred::And(Box::new(NlpPred::True), Box::new(kw(0.5)))),
        );
        let e = Extractor::Substring(Box::new(Extractor::Content), p, 1);
        let n = normalize_extractor(&e);
        let Extractor::Substring(_, NlpPred::And(l, r), _) = &n else {
            panic!("shape preserved, got {n}");
        };
        assert_eq!(**l, NlpPred::HasEntity(EntityKind::Person));
        assert_eq!(**r, kw(0.5));
    }

    #[test]
    fn filter_true_is_identity() {
        let e = Extractor::Filter(Box::new(Extractor::Content), NlpPred::True);
        assert_eq!(normalize_extractor(&e), Extractor::Content);
    }

    #[test]
    fn nested_filters_fuse() {
        let e = Extractor::Filter(
            Box::new(Extractor::Filter(Box::new(Extractor::Content), kw(0.5))),
            NlpPred::HasEntity(EntityKind::Person),
        );
        let n = normalize_extractor(&e);
        assert_eq!(
            n,
            Extractor::Filter(
                Box::new(Extractor::Content),
                NlpPred::And(
                    Box::new(kw(0.5)),
                    Box::new(NlpPred::HasEntity(EntityKind::Person))
                )
            )
        );
    }

    #[test]
    fn double_split_same_delimiter_collapses() {
        let e = Extractor::Split(
            Box::new(Extractor::Split(Box::new(Extractor::Content), ',')),
            ',',
        );
        assert_eq!(
            normalize_extractor(&e),
            Extractor::Split(Box::new(Extractor::Content), ',')
        );
        // Different delimiters do not collapse.
        let e = Extractor::Split(
            Box::new(Extractor::Split(Box::new(Extractor::Content), ';')),
            ',',
        );
        assert_eq!(normalize_extractor(&e), e);
    }

    #[test]
    fn dead_branches_are_removed() {
        let g = Guard::Sat(Locator::Root, NlpPred::True);
        let p = Program::new(vec![
            Branch::new(g.clone(), Extractor::Content),
            Branch::new(
                g.clone(),
                Extractor::Split(Box::new(Extractor::Content), ','),
            ),
        ]);
        let n = normalize(&p);
        assert_eq!(n.branches.len(), 1);
        assert_eq!(n.branches[0].extractor, Extractor::Content);
    }

    #[test]
    fn normalization_preserves_semantics_on_samples() {
        let c = ctx();
        let pg = page();
        let programs = [
            "sat(root, true) -> filter(filter(split(content, ','), kw(0.50)), true)",
            "sat(descendants(root, and(leaf, true)), or(kw(0.60), kw(0.60))) -> \
             split(split(content, ','), ',')",
            "sat(children(root, not(not(leaf))), true) -> content; \
             sat(children(root, not(not(leaf))), true) -> split(content, ',')",
            "singleton(descendants(root, text(kw(0.80)))) -> substr(content, entity(PERSON), 2)",
        ];
        for src in programs {
            let p: Program = src.parse().expect("parse");
            let n = normalize(&p);
            assert_eq!(p.eval(&c, &pg), n.eval(&c, &pg), "program {src}");
            // Normalization is idempotent.
            assert_eq!(normalize(&n), n, "idempotence for {src}");
            // Normalized form still round-trips through the text format.
            let reparsed: Program = n.to_string().parse().expect("round-trip");
            assert_eq!(reparsed, n);
        }
    }

    #[test]
    fn normalize_never_grows_size() {
        let srcs = [
            "sat(root, and(true, kw(0.55))) -> filter(content, or(kw(0.50), true))",
            "sat(descendants(root, or(elem, elem)), not(not(answer))) -> content",
        ];
        for src in srcs {
            let p: Program = src.parse().expect("parse");
            assert!(normalize(&p).size() <= p.size(), "{src}");
        }
    }
}
