//! Evaluation semantics of the WebQA DSL (Figures 5–6 of the paper).
//!
//! A program has type `Question × Keywords × Webpage → Set<String>`: the
//! question and keywords live in the [`QueryContext`], the webpage is a
//! [`PageTree`], and evaluation walks the branch list until a guard fires.

use webqa_html::{PageNodeId, PageTree};

use crate::ast::{Extractor, Guard, Locator, NlpPred, NodeFilter, Program};
use crate::context::QueryContext;

/// Longest text (in words) scanned for keyword sub-spans inside
/// `Substring(e, matchKeyword…, k)`; beyond this the window enumeration
/// would dominate evaluation for no benefit.
const MAX_WINDOW_WORDS: usize = 40;

impl NlpPred {
    /// Boolean semantics: does the string `z` satisfy the predicate?
    pub fn eval(&self, ctx: &QueryContext, z: &str) -> bool {
        match self {
            NlpPred::MatchKeyword(t) => ctx.keyword_score(z) >= t.value(),
            NlpPred::HasAnswer => ctx.has_answer(z),
            NlpPred::HasEntity(kind) => ctx.has_entity(z, *kind),
            NlpPred::True => true,
            NlpPred::And(a, b) => a.eval(ctx, z) && b.eval(ctx, z),
            NlpPred::Or(a, b) => a.eval(ctx, z) || b.eval(ctx, z),
            NlpPred::Not(a) => !a.eval(ctx, z),
        }
    }

    /// Extraction semantics for `Substring(e, λz.φ, k)`: the substrings of
    /// `z` satisfying the predicate, in positional order.
    ///
    /// * `hasEntity(l)` yields the entity spans of kind `l`, in order;
    /// * `hasAnswer` yields the QA model's best span;
    /// * `matchKeyword(t)` yields the best-scoring non-overlapping word
    ///   windows whose similarity clears `t`;
    /// * `⊤` yields `z` itself; `∧` filters, `∨` unions (keeping spans
    ///   disjoint), `¬` yields nothing (negation does not define a span).
    ///
    /// The returned spans are always **pairwise disjoint** — this is what
    /// makes `Substring` recall-monotone at the token level (Theorem A.3):
    /// the output token bag is a sub-bag of the input's.
    pub fn extract(&self, ctx: &QueryContext, z: &str) -> Vec<String> {
        self.extract_spans(ctx, z)
            .into_iter()
            .map(|(s, e)| z[s..e].trim().to_string())
            .filter(|s| !s.is_empty())
            .collect()
    }

    /// Byte spans of [`NlpPred::extract`], pairwise disjoint and ordered by
    /// position.
    fn extract_spans(&self, ctx: &QueryContext, z: &str) -> Vec<(usize, usize)> {
        match self {
            NlpPred::HasEntity(kind) => ctx
                .entities(z)
                .into_iter()
                .filter(|e| e.kind == *kind)
                .map(|e| (e.start, e.end))
                .collect(),
            NlpPred::HasAnswer => ctx.answer_span(z).into_iter().collect(),
            NlpPred::MatchKeyword(t) => keyword_windows(ctx, z, t.value()),
            NlpPred::True => {
                if z.is_empty() {
                    vec![]
                } else {
                    vec![(0, z.len())]
                }
            }
            NlpPred::And(a, b) => a
                .extract_spans(ctx, z)
                .into_iter()
                .filter(|&(s, e)| b.eval(ctx, &z[s..e]))
                .collect(),
            NlpPred::Or(a, b) => {
                let mut out = a.extract_spans(ctx, z);
                for (s, e) in b.extract_spans(ctx, z) {
                    if out.iter().all(|&(cs, ce)| e <= cs || s >= ce) {
                        out.push((s, e));
                    }
                }
                out.sort_unstable();
                out
            }
            NlpPred::Not(_) => vec![],
        }
    }
}

/// Best-scoring non-overlapping word windows of `z` with keyword
/// similarity ≥ `threshold`, ordered by position.
fn keyword_windows(ctx: &QueryContext, z: &str, threshold: f64) -> Vec<(usize, usize)> {
    let words = webqa_nlp::text::words(z);
    let n = words.len().min(MAX_WINDOW_WORDS);
    let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
    for width in 1..=3usize {
        if width > n {
            break;
        }
        for start in 0..=(n - width) {
            let span = &z[words[start].start..words[start + width - 1].end];
            let score = ctx.keyword_score(span);
            if score >= threshold {
                candidates.push((score, words[start].start, words[start + width - 1].end));
            }
        }
    }
    // Greedy best-first selection of non-overlapping spans.
    candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut chosen: Vec<(usize, usize)> = Vec::new();
    for (_, s, e) in candidates {
        if chosen.iter().all(|&(cs, ce)| e <= cs || s >= ce) {
            chosen.push((s, e));
        }
    }
    chosen.sort_unstable();
    chosen
}

impl NodeFilter {
    /// Does node `n` of `page` satisfy the filter?
    pub fn eval(&self, ctx: &QueryContext, page: &PageTree, n: PageNodeId) -> bool {
        match self {
            NodeFilter::IsLeaf => page.is_leaf(n),
            NodeFilter::IsElem => page.is_elem(n),
            NodeFilter::MatchText { pred, subtree } => {
                if *subtree {
                    pred.eval(ctx, &page.subtree_text(n))
                } else {
                    pred.eval(ctx, page.text(n))
                }
            }
            NodeFilter::True => true,
            NodeFilter::And(a, b) => a.eval(ctx, page, n) && b.eval(ctx, page, n),
            NodeFilter::Or(a, b) => a.eval(ctx, page, n) || b.eval(ctx, page, n),
            NodeFilter::Not(a) => !a.eval(ctx, page, n),
        }
    }
}

impl Locator {
    /// The nodes located by `ν` on `page`, in document order, no
    /// duplicates.
    pub fn eval(&self, ctx: &QueryContext, page: &PageTree) -> Vec<PageNodeId> {
        match self {
            Locator::Root => vec![page.root()],
            Locator::Children(inner, filter) => {
                let mut out = Vec::new();
                for n in inner.eval(ctx, page) {
                    for &c in page.children(n) {
                        if filter.eval(ctx, page, c) {
                            out.push(c);
                        }
                    }
                }
                dedup_ordered(out)
            }
            Locator::Descendants(inner, filter) => {
                let mut out = Vec::new();
                for n in inner.eval(ctx, page) {
                    for d in page.descendants(n) {
                        if filter.eval(ctx, page, d) {
                            out.push(d);
                        }
                    }
                }
                dedup_ordered(out)
            }
        }
    }
}

fn dedup_ordered(mut v: Vec<PageNodeId>) -> Vec<PageNodeId> {
    v.sort_unstable();
    v.dedup();
    v
}

impl Guard {
    /// Evaluates the guard: returns whether it fires and the located
    /// section nodes that get bound to `x`.
    pub fn eval(&self, ctx: &QueryContext, page: &PageTree) -> (bool, Vec<PageNodeId>) {
        match self {
            Guard::Sat(locator, pred) => {
                let nodes = locator.eval(ctx, page);
                let ok = nodes.iter().any(|&n| pred.eval(ctx, page.text(n)));
                (ok, nodes)
            }
            Guard::IsSingleton(locator) => {
                let nodes = locator.eval(ctx, page);
                let ok = nodes.len() == 1;
                (ok, nodes)
            }
        }
    }
}

impl Extractor {
    /// Applies the extractor to the located nodes, producing the extracted
    /// strings in order (duplicates preserved; the program-level result is
    /// de-duplicated).
    pub fn eval(&self, ctx: &QueryContext, page: &PageTree, nodes: &[PageNodeId]) -> Vec<String> {
        match self {
            Extractor::Content => nodes
                .iter()
                .map(|&n| page.text(n).to_string())
                .filter(|s| !s.is_empty())
                .collect(),
            Extractor::Split(inner, delim) => inner
                .eval(ctx, page, nodes)
                .into_iter()
                .flat_map(|s| {
                    s.split(*delim)
                        .map(|p| p.trim().to_string())
                        .filter(|p| !p.is_empty())
                        .collect::<Vec<_>>()
                })
                .collect(),
            Extractor::Filter(inner, pred) => inner
                .eval(ctx, page, nodes)
                .into_iter()
                .filter(|s| pred.eval(ctx, s))
                .collect(),
            Extractor::Substring(inner, pred, k) => inner
                .eval(ctx, page, nodes)
                .into_iter()
                .flat_map(|s| {
                    pred.extract(ctx, &s)
                        .into_iter()
                        .take(*k)
                        .collect::<Vec<_>>()
                })
                .collect(),
        }
    }
}

impl Program {
    /// Runs the program on a page: the first branch whose guard fires
    /// produces the output; if no guard fires the result is `∅`.
    pub fn eval(&self, ctx: &QueryContext, page: &PageTree) -> Vec<String> {
        for branch in &self.branches {
            let (ok, nodes) = branch.guard.eval(ctx, page);
            if ok {
                let mut out = branch.extractor.eval(ctx, page, &nodes);
                // Set semantics (Figure 6: p returns Set<String>).
                let mut seen = std::collections::HashSet::new();
                out.retain(|s| seen.insert(s.clone()));
                return out;
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Branch, Threshold};
    use webqa_nlp::EntityKind;

    const PAGE: &str = r#"
<h1>Jane Doe</h1>
<h2>Recent Publications</h2>
<p>Synthesizing programs from examples. Jane Doe. PLDI 2018.</p>
<h2>Students</h2>
<b>PhD students</b>
<ul><li>Robert Smith</li><li>Mary Anderson</li></ul>
<h2>Activities</h2>
<b>Professional Services</b>
<ul><li>Current: PLDI '21 (PC)</li><li>Past: CAV '20 (PC), PLDI '20 (SRC), POPL '20 (PC)</li></ul>
"#;

    fn page() -> PageTree {
        PageTree::parse(PAGE)
    }

    fn ctx_service() -> QueryContext {
        QueryContext::new(
            "Which program committees has this researcher served on?",
            ["PC", "Program Committee", "Service"],
        )
    }

    fn kw(t: f64) -> NlpPred {
        NlpPred::MatchKeyword(Threshold::new(t))
    }

    /// Eq. 1 of the paper: locate leaves under keyword-matching sections.
    fn eq1_locator() -> Locator {
        Locator::leaves(Locator::Descendants(
            Box::new(Locator::Root),
            NodeFilter::MatchText {
                pred: kw(0.85),
                subtree: false,
            },
        ))
    }

    #[test]
    fn motivating_example_locator() {
        let ctx = ctx_service();
        let p = page();
        let nodes = eq1_locator().eval(&ctx, &p);
        let texts: Vec<&str> = nodes.iter().map(|&n| p.text(n)).collect();
        assert_eq!(
            texts,
            [
                "Current: PLDI '21 (PC)",
                "Past: CAV '20 (PC), PLDI '20 (SRC), POPL '20 (PC)"
            ]
        );
    }

    #[test]
    fn motivating_example_full_program() {
        // Eq. 1 + Eq. 2 with Filter(matchKeyword) over comma-split parts.
        let ctx = ctx_service();
        let p = page();
        let guard = Guard::Sat(eq1_locator(), NlpPred::True);
        let extractor = Extractor::Filter(
            Box::new(Extractor::Split(Box::new(Extractor::Content), ',')),
            kw(0.5),
        );
        let prog = Program::single(guard, extractor);
        let out = prog.eval(&ctx, &p);
        // All five service entries contain "(PC)" or "(SRC)" and match the
        // keyword set; the publications section is untouched.
        assert!(out.iter().any(|s| s.contains("PLDI '21")), "out = {out:?}");
        assert!(out.iter().all(|s| !s.contains("Synthesizing")));
    }

    #[test]
    fn guard_fallthrough_to_second_branch() {
        let ctx = ctx_service();
        let p = page();
        // First guard never fires (no Money entities on the page).
        let dead = Guard::Sat(
            Locator::leaves(Locator::Root),
            NlpPred::HasEntity(EntityKind::Money),
        );
        let live = Guard::Sat(Locator::Root, NlpPred::True);
        let prog = Program::new(vec![
            Branch::new(dead, Extractor::Content),
            Branch::new(live, Extractor::Content),
        ]);
        assert_eq!(prog.eval(&ctx, &p), vec!["Jane Doe".to_string()]);
    }

    #[test]
    fn no_guard_fires_yields_empty() {
        let ctx = ctx_service();
        let p = page();
        let dead = Guard::Sat(Locator::Root, NlpPred::HasEntity(EntityKind::Money));
        let prog = Program::single(dead, Extractor::Content);
        assert!(prog.eval(&ctx, &p).is_empty());
    }

    #[test]
    fn is_singleton_guard() {
        let ctx = ctx_service();
        let p = page();
        let (ok, nodes) = Guard::IsSingleton(Locator::Root).eval(&ctx, &p);
        assert!(ok);
        assert_eq!(nodes.len(), 1);
        let (ok, _) = Guard::IsSingleton(Locator::leaves(Locator::Root)).eval(&ctx, &p);
        assert!(!ok);
    }

    #[test]
    fn children_vs_descendants() {
        let ctx = ctx_service();
        let p = page();
        let kids = Locator::Children(Box::new(Locator::Root), NodeFilter::True).eval(&ctx, &p);
        let descs = Locator::Descendants(Box::new(Locator::Root), NodeFilter::True).eval(&ctx, &p);
        assert!(kids.len() < descs.len());
        assert_eq!(descs.len(), p.len() - 1);
    }

    #[test]
    fn split_trims_and_drops_empty() {
        let ctx = ctx_service();
        let p = PageTree::parse("<h1>R</h1><p>a, b,, c ,</p>");
        let nodes = Locator::leaves(Locator::Root).eval(&ctx, &p);
        let out = Extractor::Split(Box::new(Extractor::Content), ',').eval(&ctx, &p, &nodes);
        assert_eq!(out, ["a", "b", "c"]);
    }

    #[test]
    fn substring_entity_extraction() {
        let ctx = ctx_service();
        let p =
            PageTree::parse("<h1>R</h1><p>Advised by Jane Doe and Robert Smith since 2019.</p>");
        let nodes = Locator::leaves(Locator::Root).eval(&ctx, &p);
        let top1 = Extractor::entity(Extractor::Content, EntityKind::Person).eval(&ctx, &p, &nodes);
        assert_eq!(top1, ["Jane Doe"]);
        let top2 = Extractor::Substring(
            Box::new(Extractor::Content),
            NlpPred::HasEntity(EntityKind::Person),
            2,
        )
        .eval(&ctx, &p, &nodes);
        assert_eq!(top2, ["Jane Doe", "Robert Smith"]);
    }

    #[test]
    fn filter_keeps_only_matching() {
        let ctx = ctx_service();
        let p = PageTree::parse("<h1>R</h1><ul><li>PLDI '20 (PC)</li><li>reading group</li></ul>");
        let nodes = Locator::leaves(Locator::Root).eval(&ctx, &p);
        let out = Extractor::Filter(Box::new(Extractor::Content), kw(0.6)).eval(&ctx, &p, &nodes);
        assert_eq!(out, ["PLDI '20 (PC)"]);
    }

    #[test]
    fn program_output_is_a_set() {
        let ctx = ctx_service();
        let p = PageTree::parse("<h1>R</h1><ul><li>dup</li><li>dup</li></ul>");
        let prog = Program::single(
            Guard::Sat(Locator::leaves(Locator::Root), NlpPred::True),
            Extractor::Content,
        );
        assert_eq!(prog.eval(&ctx, &p), ["dup"]);
    }

    #[test]
    fn boolean_connectives() {
        let ctx = ctx_service();
        assert!(NlpPred::True.eval(&ctx, "x"));
        assert!(!NlpPred::Not(Box::new(NlpPred::True)).eval(&ctx, "x"));
        let and = NlpPred::And(Box::new(NlpPred::True), Box::new(kw(0.99)));
        assert!(!and.eval(&ctx, "unrelated text entirely"));
        let or = NlpPred::Or(Box::new(kw(0.99)), Box::new(NlpPred::True));
        assert!(or.eval(&ctx, "unrelated text entirely"));
    }

    #[test]
    fn node_filter_connectives() {
        let ctx = ctx_service();
        let p = page();
        let root = p.root();
        assert!(NodeFilter::True.eval(&ctx, &p, root));
        assert!(!NodeFilter::Not(Box::new(NodeFilter::True)).eval(&ctx, &p, root));
        assert!(!NodeFilter::IsLeaf.eval(&ctx, &p, root));
        let f = NodeFilter::Or(Box::new(NodeFilter::IsLeaf), Box::new(NodeFilter::True));
        assert!(f.eval(&ctx, &p, root));
    }

    #[test]
    fn match_text_subtree_flag() {
        let ctx = QueryContext::new("", ["PLDI"]);
        let p = page();
        // The "Recent Publications" section node itself doesn't contain
        // "PLDI", but its subtree does.
        let pubs = p
            .iter()
            .find(|&n| p.text(n) == "Recent Publications")
            .expect("section exists");
        let own = NodeFilter::MatchText {
            pred: kw(0.99),
            subtree: false,
        };
        let sub = NodeFilter::MatchText {
            pred: kw(0.99),
            subtree: true,
        };
        assert!(!own.eval(&ctx, &p, pubs));
        assert!(sub.eval(&ctx, &p, pubs));
    }

    #[test]
    fn keyword_window_extraction() {
        let ctx = QueryContext::new("", ["committee"]);
        let spans = NlpPred::MatchKeyword(Threshold::new(0.9))
            .extract(&ctx, "the program committee met yesterday");
        assert!(
            spans.iter().any(|s| s.contains("committee")),
            "spans = {spans:?}"
        );
    }

    #[test]
    fn extract_true_and_empty() {
        let ctx = ctx_service();
        assert_eq!(NlpPred::True.extract(&ctx, "abc"), ["abc"]);
        assert!(NlpPred::True.extract(&ctx, "").is_empty());
        assert!(NlpPred::Not(Box::new(NlpPred::True))
            .extract(&ctx, "abc")
            .is_empty());
    }
}
