//! Static well-formedness checks for hand-written WebQA programs.
//!
//! The synthesizer only produces programs inside its bounded grammar, but
//! the text format ([`crate::Program::from_str`]) accepts arbitrary DSL
//! terms — including ones that are well-typed yet degenerate at runtime
//! (a `matchKeyword` predicate under a context with no keywords, a branch
//! shadowed by an identical earlier guard, a threshold off the paper's
//! 0.05 discretization grid). [`lint`] reports such issues without
//! evaluating the program, so tooling (the CLI's `check` command, the
//! examples) can warn before running an extraction over a large page set.

use std::fmt;

use crate::ast::{Extractor, Guard, Locator, NlpPred, NodeFilter, Program};
use crate::context::QueryContext;

/// One diagnostic produced by [`lint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintIssue {
    /// The program uses `matchKeyword` but the context has no keywords:
    /// every such predicate is vacuously false.
    KeywordsUnavailable,
    /// The program uses `hasAnswer` but the context question is empty.
    QuestionUnavailable,
    /// Branch `later` can never fire: its guard is subsumed by branch
    /// `earlier`'s guard, which takes precedence. Subsumption is decided
    /// semantically ([`crate::analysis::Analyzer::guard_implies`]) —
    /// byte-identical guards are the simplest case and are attributed
    /// first when both kinds of shadow exist.
    DeadBranch {
        /// Index of the shadowing branch.
        earlier: usize,
        /// Index of the unreachable branch.
        later: usize,
    },
    /// A `Filter(e, ⊤)` keeps every string; the filter is a no-op.
    TrivialFilter {
        /// Index of the branch containing the filter.
        branch: usize,
    },
    /// A threshold is not a multiple of 0.05 — outside the grid the
    /// paper's synthesizer searches (Section 7), so the program cannot
    /// have come from (and cannot be compared against) a synthesized one.
    OffGridThreshold {
        /// Index of the branch containing the threshold.
        branch: usize,
        /// The offending value in hundredths.
        hundredths: u8,
    },
    /// A `¬φ` predicate in `Substring` position: negations extract no
    /// spans, so the `Substring` always returns the empty set.
    NegationInSubstring {
        /// Index of the branch containing the substring.
        branch: usize,
    },
    /// The locator nests deeper than `depth`, which exceeds the given
    /// bound (the synthesizer's default guard depth is 7, Section 7).
    LocatorTooDeep {
        /// Index of the branch.
        branch: usize,
        /// Observed locator depth.
        depth: usize,
        /// The configured bound.
        bound: usize,
    },
    /// The extractor chain is longer than `depth`, exceeding the bound
    /// (the synthesizer's default extractor depth is 5, Section 7).
    ExtractorTooDeep {
        /// Index of the branch.
        branch: usize,
        /// Observed extractor depth.
        depth: usize,
        /// The configured bound.
        bound: usize,
    },
}

impl fmt::Display for LintIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintIssue::KeywordsUnavailable => {
                write!(
                    f,
                    "program uses matchKeyword but the context has no keywords"
                )
            }
            LintIssue::QuestionUnavailable => {
                write!(
                    f,
                    "program uses hasAnswer but the context question is empty"
                )
            }
            LintIssue::DeadBranch { earlier, later } => write!(
                f,
                "branch {later} is unreachable: its guard is subsumed by branch {earlier}'s guard"
            ),
            LintIssue::TrivialFilter { branch } => {
                write!(f, "branch {branch}: filter(e, true) is a no-op")
            }
            LintIssue::OffGridThreshold { branch, hundredths } => write!(
                f,
                "branch {branch}: threshold 0.{hundredths:02} is off the 0.05 grid"
            ),
            LintIssue::NegationInSubstring { branch } => write!(
                f,
                "branch {branch}: a negated predicate in substr extracts nothing"
            ),
            LintIssue::LocatorTooDeep {
                branch,
                depth,
                bound,
            } => write!(
                f,
                "branch {branch}: locator depth {depth} exceeds the bound {bound}"
            ),
            LintIssue::ExtractorTooDeep {
                branch,
                depth,
                bound,
            } => write!(
                f,
                "branch {branch}: extractor depth {depth} exceeds the bound {bound}"
            ),
        }
    }
}

/// The result of [`lint`]: all issues found, in branch order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// The diagnostics.
    pub issues: Vec<LintIssue>,
}

impl LintReport {
    /// True when no issue was found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.issues.is_empty() {
            return write!(f, "no issues");
        }
        for (i, issue) in self.issues.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{issue}")?;
        }
        Ok(())
    }
}

/// Default locator-depth bound, matching the synthesizer's guard depth
/// hyper-parameter (Section 7 of the paper).
pub const DEFAULT_LOCATOR_DEPTH: usize = 7;
/// Default extractor-depth bound (Section 7 of the paper).
pub const DEFAULT_EXTRACTOR_DEPTH: usize = 5;

/// Checks a program against a query context; see [`LintIssue`] for the
/// catalogue of diagnostics.
///
/// ```
/// use webqa_dsl::{lint, Program, QueryContext};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p: Program = "sat(root, kw(0.60)) -> filter(content, true)".parse()?;
/// let ctx = QueryContext::question_only("Who are the PhD students?");
/// let report = lint(&p, &ctx);
/// assert!(!report.is_clean()); // kw(0.60) with no keywords + trivial filter
/// # Ok(())
/// # }
/// ```
pub fn lint(program: &Program, ctx: &QueryContext) -> LintReport {
    let mut issues = Vec::new();
    let analyzer = crate::analysis::Analyzer::new(ctx);

    if program.uses_keywords() && ctx.keywords().is_empty() {
        issues.push(LintIssue::KeywordsUnavailable);
    }
    if program.uses_question() && ctx.question().is_empty() {
        issues.push(LintIssue::QuestionUnavailable);
    }

    for (i, b) in program.branches.iter().enumerate() {
        // Dead branches are decided by the semantic subsumption analysis;
        // byte-identical guards are scanned first so the attribution (and
        // the report text) stays what the purely syntactic pass produced.
        let earlier = &program.branches[..i];
        let shadow = earlier.iter().position(|e| e.guard == b.guard).or_else(|| {
            earlier
                .iter()
                .position(|e| analyzer.guard_implies(&b.guard, &e.guard))
        });
        if let Some(j) = shadow {
            issues.push(LintIssue::DeadBranch {
                earlier: j,
                later: i,
            });
        }
        let depth = locator_depth(b.guard.locator());
        if depth > DEFAULT_LOCATOR_DEPTH {
            issues.push(LintIssue::LocatorTooDeep {
                branch: i,
                depth,
                bound: DEFAULT_LOCATOR_DEPTH,
            });
        }
        let edepth = b.extractor.depth();
        if edepth > DEFAULT_EXTRACTOR_DEPTH {
            issues.push(LintIssue::ExtractorTooDeep {
                branch: i,
                depth: edepth,
                bound: DEFAULT_EXTRACTOR_DEPTH,
            });
        }
        check_extractor(&b.extractor, i, &mut issues);
        check_guard_thresholds(&b.guard, i, &mut issues);
    }

    LintReport { issues }
}

fn locator_depth(l: &Locator) -> usize {
    l.depth()
}

fn check_extractor(e: &Extractor, branch: usize, issues: &mut Vec<LintIssue>) {
    match e {
        Extractor::Content => {}
        Extractor::Filter(inner, p) => {
            if *p == NlpPred::True {
                issues.push(LintIssue::TrivialFilter { branch });
            }
            check_pred_thresholds(p, branch, issues);
            check_extractor(inner, branch, issues);
        }
        Extractor::Substring(inner, p, _) => {
            if matches!(p, NlpPred::Not(_)) {
                issues.push(LintIssue::NegationInSubstring { branch });
            }
            check_pred_thresholds(p, branch, issues);
            check_extractor(inner, branch, issues);
        }
        Extractor::Split(inner, _) => check_extractor(inner, branch, issues),
    }
}

fn check_guard_thresholds(g: &Guard, branch: usize, issues: &mut Vec<LintIssue>) {
    match g {
        Guard::Sat(l, p) => {
            check_locator_thresholds(l, branch, issues);
            check_pred_thresholds(p, branch, issues);
        }
        Guard::IsSingleton(l) => check_locator_thresholds(l, branch, issues),
    }
}

fn check_locator_thresholds(l: &Locator, branch: usize, issues: &mut Vec<LintIssue>) {
    match l {
        Locator::Root => {}
        Locator::Children(inner, f) | Locator::Descendants(inner, f) => {
            check_locator_thresholds(inner, branch, issues);
            check_filter_thresholds(f, branch, issues);
        }
    }
}

fn check_filter_thresholds(f: &NodeFilter, branch: usize, issues: &mut Vec<LintIssue>) {
    match f {
        NodeFilter::IsLeaf | NodeFilter::IsElem | NodeFilter::True => {}
        NodeFilter::MatchText { pred, .. } => check_pred_thresholds(pred, branch, issues),
        NodeFilter::And(a, b) | NodeFilter::Or(a, b) => {
            check_filter_thresholds(a, branch, issues);
            check_filter_thresholds(b, branch, issues);
        }
        NodeFilter::Not(a) => check_filter_thresholds(a, branch, issues),
    }
}

fn check_pred_thresholds(p: &NlpPred, branch: usize, issues: &mut Vec<LintIssue>) {
    match p {
        NlpPred::MatchKeyword(t) => {
            let hundredths = (t.value() * 100.0).round() as u8;
            if !hundredths.is_multiple_of(5) {
                issues.push(LintIssue::OffGridThreshold { branch, hundredths });
            }
        }
        NlpPred::HasAnswer | NlpPred::HasEntity(_) | NlpPred::True => {}
        NlpPred::And(a, b) | NlpPred::Or(a, b) => {
            check_pred_thresholds(a, branch, issues);
            check_pred_thresholds(b, branch, issues);
        }
        NlpPred::Not(a) => check_pred_thresholds(a, branch, issues),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> QueryContext {
        QueryContext::new("Who are the current PhD students?", ["Students", "PhD"])
    }

    fn parse(src: &str) -> Program {
        src.parse().expect("valid program")
    }

    #[test]
    fn clean_program_is_clean() {
        let p = parse(
            "sat(descendants(root, leaf), kw(0.60)) -> filter(split(content, ','), kw(0.50))",
        );
        assert!(lint(&p, &ctx()).is_clean());
    }

    #[test]
    fn missing_keywords_flagged() {
        let p = parse("sat(root, kw(0.60)) -> content");
        let r = lint(&p, &QueryContext::question_only("q?"));
        assert!(r.issues.contains(&LintIssue::KeywordsUnavailable));
    }

    #[test]
    fn missing_question_flagged() {
        let p = parse("sat(root, answer) -> content");
        let r = lint(&p, &QueryContext::keywords_only(["k"]));
        assert!(r.issues.contains(&LintIssue::QuestionUnavailable));
    }

    #[test]
    fn dead_branch_flagged() {
        let p = parse("sat(root, true) -> content; sat(root, true) -> split(content, ',')");
        let r = lint(&p, &ctx());
        assert!(r.issues.contains(&LintIssue::DeadBranch {
            earlier: 0,
            later: 1
        }));
    }

    #[test]
    fn semantically_subsumed_branch_flagged() {
        // Guards differ syntactically, but kw(0.80) ⇒ kw(0.50): the
        // second branch can never fire.
        let p = parse("sat(root, kw(0.50)) -> content; sat(root, kw(0.80)) -> content");
        let r = lint(&p, &ctx());
        assert!(r.issues.contains(&LintIssue::DeadBranch {
            earlier: 0,
            later: 1
        }));
        // The reverse order is fine: the stronger guard fires first.
        let p = parse("sat(root, kw(0.80)) -> content; sat(root, kw(0.50)) -> content");
        assert!(lint(&p, &ctx()).is_clean());
    }

    #[test]
    fn byte_identical_guard_attribution_wins() {
        // Branch 2's guard both implies branch 0's and equals branch 1's;
        // the byte-identical earlier branch is the one reported.
        let p = parse(
            "sat(root, kw(0.50)) -> content; \
             sat(root, kw(0.80)) -> content; \
             sat(root, kw(0.80)) -> split(content, ',')",
        );
        let r = lint(&p, &ctx());
        assert!(r.issues.contains(&LintIssue::DeadBranch {
            earlier: 1,
            later: 2
        }));
    }

    #[test]
    fn branch_after_catch_all_flagged() {
        let p = parse("sat(root, true) -> content; sat(root, kw(0.80)) -> content");
        let r = lint(&p, &ctx());
        assert!(r.issues.contains(&LintIssue::DeadBranch {
            earlier: 0,
            later: 1
        }));
    }

    #[test]
    fn trivial_filter_flagged() {
        let p = parse("sat(root, true) -> filter(content, true)");
        let r = lint(&p, &ctx());
        assert!(r.issues.contains(&LintIssue::TrivialFilter { branch: 0 }));
    }

    #[test]
    fn off_grid_threshold_flagged() {
        let p = parse("sat(root, kw(0.63)) -> content");
        let r = lint(&p, &ctx());
        assert!(r.issues.contains(&LintIssue::OffGridThreshold {
            branch: 0,
            hundredths: 63
        }));
        // On-grid values pass.
        let p = parse("sat(root, kw(0.65)) -> content");
        assert!(lint(&p, &ctx()).is_clean());
    }

    #[test]
    fn negation_in_substring_flagged() {
        let p = parse("sat(root, true) -> substr(content, not(entity(PERSON)), 1)");
        let r = lint(&p, &ctx());
        assert!(r
            .issues
            .contains(&LintIssue::NegationInSubstring { branch: 0 }));
    }

    #[test]
    fn depth_bounds_flagged() {
        // Locator depth 8 > 7.
        let mut loc = String::from("root");
        for _ in 0..7 {
            loc = format!("children({loc}, true)");
        }
        let p = parse(&format!("sat({loc}, true) -> content"));
        let r = lint(&p, &ctx());
        assert!(matches!(
            r.issues.first(),
            Some(LintIssue::LocatorTooDeep {
                depth: 8,
                bound: 7,
                ..
            })
        ));
        // Extractor depth 6 > 5.
        let mut e = String::from("content");
        for _ in 0..5 {
            e = format!("split({e}, ',')");
        }
        let p = parse(&format!("sat(root, true) -> {e}"));
        let r = lint(&p, &ctx());
        assert!(r.issues.iter().any(|i| matches!(
            i,
            LintIssue::ExtractorTooDeep {
                depth: 6,
                bound: 5,
                ..
            }
        )));
    }

    #[test]
    fn report_display_lists_issues() {
        let p = parse("sat(root, true) -> filter(content, true)");
        let r = lint(&p, &ctx());
        let text = r.to_string();
        assert!(text.contains("no-op"), "{text}");
        assert!(lint(&parse("sat(root, true) -> content"), &ctx())
            .to_string()
            .contains("no issues"));
    }
}
