//! Parser for the canonical program syntax produced by `Display`.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! program   := branch (';' branch)*
//! branch    := guard '->' extractor
//! guard     := 'sat(' locator ',' pred ')' | 'singleton(' locator ')'
//! locator   := 'root' | 'children(' locator ',' filter ')'
//!            | 'descendants(' locator ',' filter ')'
//! filter    := 'leaf' | 'elem' | 'text(' pred ')' | 'subtree(' pred ')'
//!            | 'true' | 'and(' filter ',' filter ')' | 'or(…)' | 'not(…)'
//! pred      := 'kw(' float ')' | 'answer' | 'entity(' KIND ')' | 'true'
//!            | 'and(' pred ',' pred ')' | 'or(…)' | 'not(…)'
//! extractor := 'content' | 'substr(' extractor ',' pred ',' int ')'
//!            | 'filter(' extractor ',' pred ')' | "split(" extractor ", '" char "')"
//! ```

use crate::ast::{Branch, Extractor, Guard, Locator, NlpPred, NodeFilter, Program, Threshold};
use webqa_nlp::EntityKind;

/// Error produced when parsing a program string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    /// Byte position of the failure.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseProgramError {}

impl std::str::FromStr for Program {
    type Err = ParseProgramError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut p = Parser { src: s, pos: 0 };
        let prog = p.program()?;
        p.skip_ws();
        if p.pos != s.len() {
            return Err(p.err("trailing input"));
        }
        Ok(prog)
    }
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

type PResult<T> = Result<T, ParseProgramError>;

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseProgramError {
        ParseProgramError {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> PResult<()> {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {token:?}")))
        }
    }

    fn try_eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> PResult<&'a str> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() {
            let b = self.src.as_bytes()[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            Err(self.err("expected identifier"))
        } else {
            Ok(&self.src[start..self.pos])
        }
    }

    fn number(&mut self) -> PResult<f64> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() {
            let b = self.src.as_bytes()[self.pos];
            if b.is_ascii_digit() || b == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| self.err("expected number"))
    }

    fn integer(&mut self) -> PResult<usize> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src.as_bytes()[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| self.err("expected integer"))
    }

    fn quoted_char(&mut self) -> PResult<char> {
        self.eat("'")?;
        let c = self.src[self.pos..]
            .chars()
            .next()
            .ok_or_else(|| self.err("expected character"))?;
        self.pos += c.len_utf8();
        // plain eat would skip whitespace, which would mis-parse "' '".
        if self.src[self.pos..].starts_with('\'') {
            self.pos += 1;
            Ok(c)
        } else {
            Err(self.err("expected closing quote"))
        }
    }

    fn program(&mut self) -> PResult<Program> {
        let mut branches = vec![self.branch()?];
        while self.try_eat(";") {
            branches.push(self.branch()?);
        }
        Ok(Program::new(branches))
    }

    fn branch(&mut self) -> PResult<Branch> {
        let guard = self.guard()?;
        self.eat("->")?;
        let extractor = self.extractor()?;
        Ok(Branch::new(guard, extractor))
    }

    fn guard(&mut self) -> PResult<Guard> {
        let name = self.ident()?;
        match name {
            "sat" => {
                self.eat("(")?;
                let l = self.locator()?;
                self.eat(",")?;
                let p = self.pred()?;
                self.eat(")")?;
                Ok(Guard::Sat(l, p))
            }
            "singleton" => {
                self.eat("(")?;
                let l = self.locator()?;
                self.eat(")")?;
                Ok(Guard::IsSingleton(l))
            }
            other => Err(self.err(&format!("unknown guard {other:?}"))),
        }
    }

    fn locator(&mut self) -> PResult<Locator> {
        let name = self.ident()?;
        match name {
            "root" => Ok(Locator::Root),
            "children" | "descendants" => {
                self.eat("(")?;
                let inner = self.locator()?;
                self.eat(",")?;
                let f = self.filter()?;
                self.eat(")")?;
                Ok(if name == "children" {
                    Locator::Children(Box::new(inner), f)
                } else {
                    Locator::Descendants(Box::new(inner), f)
                })
            }
            other => Err(self.err(&format!("unknown locator {other:?}"))),
        }
    }

    fn filter(&mut self) -> PResult<NodeFilter> {
        let name = self.ident()?;
        match name {
            "leaf" => Ok(NodeFilter::IsLeaf),
            "elem" => Ok(NodeFilter::IsElem),
            "true" => Ok(NodeFilter::True),
            "text" | "subtree" => {
                self.eat("(")?;
                let p = self.pred()?;
                self.eat(")")?;
                Ok(NodeFilter::MatchText {
                    pred: p,
                    subtree: name == "subtree",
                })
            }
            "and" | "or" => {
                self.eat("(")?;
                let a = self.filter()?;
                self.eat(",")?;
                let b = self.filter()?;
                self.eat(")")?;
                Ok(if name == "and" {
                    NodeFilter::And(Box::new(a), Box::new(b))
                } else {
                    NodeFilter::Or(Box::new(a), Box::new(b))
                })
            }
            "not" => {
                self.eat("(")?;
                let a = self.filter()?;
                self.eat(")")?;
                Ok(NodeFilter::Not(Box::new(a)))
            }
            other => Err(self.err(&format!("unknown node filter {other:?}"))),
        }
    }

    fn pred(&mut self) -> PResult<NlpPred> {
        let name = self.ident()?;
        match name {
            "answer" => Ok(NlpPred::HasAnswer),
            "true" => Ok(NlpPred::True),
            "kw" => {
                self.eat("(")?;
                let t = self.number()?;
                self.eat(")")?;
                Ok(NlpPred::MatchKeyword(Threshold::new(t)))
            }
            "entity" => {
                self.eat("(")?;
                let kind_name = self.ident()?;
                let kind: EntityKind = kind_name.parse().map_err(|e: String| self.err(&e))?;
                self.eat(")")?;
                Ok(NlpPred::HasEntity(kind))
            }
            "and" | "or" => {
                self.eat("(")?;
                let a = self.pred()?;
                self.eat(",")?;
                let b = self.pred()?;
                self.eat(")")?;
                Ok(if name == "and" {
                    NlpPred::And(Box::new(a), Box::new(b))
                } else {
                    NlpPred::Or(Box::new(a), Box::new(b))
                })
            }
            "not" => {
                self.eat("(")?;
                let a = self.pred()?;
                self.eat(")")?;
                Ok(NlpPred::Not(Box::new(a)))
            }
            other => Err(self.err(&format!("unknown predicate {other:?}"))),
        }
    }

    fn extractor(&mut self) -> PResult<Extractor> {
        let name = self.ident()?;
        match name {
            "content" => Ok(Extractor::Content),
            "substr" => {
                self.eat("(")?;
                let e = self.extractor()?;
                self.eat(",")?;
                let p = self.pred()?;
                self.eat(",")?;
                let k = self.integer()?;
                self.eat(")")?;
                Ok(Extractor::Substring(Box::new(e), p, k))
            }
            "filter" => {
                self.eat("(")?;
                let e = self.extractor()?;
                self.eat(",")?;
                let p = self.pred()?;
                self.eat(")")?;
                Ok(Extractor::Filter(Box::new(e), p))
            }
            "split" => {
                self.eat("(")?;
                let e = self.extractor()?;
                self.eat(",")?;
                let c = self.quoted_char()?;
                self.eat(")")?;
                Ok(Extractor::Split(Box::new(e), c))
            }
            other => Err(self.err(&format!("unknown extractor {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let p: Program = src.parse().expect("parse");
        assert_eq!(p.to_string(), src);
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip("singleton(root) -> content");
    }

    #[test]
    fn roundtrip_motivating_example() {
        roundtrip(
            "sat(descendants(descendants(root, text(kw(0.80))), leaf), true) -> \
             substr(filter(split(content, ','), kw(0.60)), entity(ORG), 1)",
        );
    }

    #[test]
    fn roundtrip_multi_branch() {
        roundtrip("singleton(root) -> content; sat(root, answer) -> split(content, ';')");
    }

    #[test]
    fn roundtrip_connectives() {
        roundtrip(
            "sat(children(root, and(leaf, not(elem))), or(answer, entity(PERSON))) -> \
             filter(content, and(true, not(kw(0.50))))",
        );
    }

    #[test]
    fn roundtrip_subtree_filter() {
        roundtrip("sat(descendants(root, subtree(kw(0.75))), true) -> content");
    }

    #[test]
    fn whitespace_insensitive() {
        let p: Program = "  singleton( root )  ->  content ".parse().unwrap();
        assert_eq!(p.to_string(), "singleton(root) -> content");
    }

    #[test]
    fn split_with_space_delimiter() {
        roundtrip("singleton(root) -> split(content, ' ')");
    }

    #[test]
    fn all_entity_kinds_parse() {
        for k in ["PERSON", "ORG", "DATE", "TIME", "LOC", "MONEY"] {
            let src = format!("sat(root, entity({k})) -> content");
            let p: Program = src.parse().expect("parse");
            assert_eq!(p.to_string(), src);
        }
    }

    #[test]
    fn error_reports_position() {
        let e = "singleton(root) -> bogus".parse::<Program>().unwrap_err();
        assert!(e.position > 0);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!("singleton(root) -> content xx".parse::<Program>().is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "sat(root) -> content",
            "singleton(root) content",
            "singleton(root) -> substr(content, true)",
            "singleton(root) -> split(content, ,)",
            "sat(root, entity(WAT)) -> content",
        ] {
            assert!(bad.parse::<Program>().is_err(), "should reject {bad:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Serde support: programs serialize as their canonical text form, which
// is what the parser in this module accepts — so serialization and the
// text format can never drift apart.

impl serde::Serialize for Program {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> serde::Deserialize<'de> for Program {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod serde_tests {
    use crate::Program;

    #[test]
    fn program_serde_round_trips_via_text_form() {
        let p: Program =
            "sat(descendants(root, leaf), kw(0.60)) -> filter(split(content, \',\'), kw(0.50))"
                .parse()
                .expect("valid");
        let json = serde_json::to_string(&p).expect("serialize");
        assert!(json.starts_with('"'), "{json}");
        let back: Program = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(p, back);
    }

    #[test]
    fn bad_program_fails_to_deserialize() {
        let r: Result<Program, _> = serde_json::from_str("\"wat(\"");
        assert!(r.is_err());
    }
}
