//! # webqa-dsl
//!
//! The WebQA neurosymbolic domain-specific language (Section 4 of the
//! paper): abstract syntax (Figure 5), typed evaluation semantics
//! (Figure 6), a canonical text format with parser, and the paper's
//! λ-notation pretty printer.
//!
//! A program maps `(Question, Keywords, Webpage) → Set<String>`:
//!
//! ```
//! use webqa_dsl::{Program, QueryContext};
//! use webqa_html::PageTree;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Locate leaves under sections matching the keywords, then split on
//! // commas and keep keyword-matching parts (the paper's Eq. 1 + Eq. 2).
//! let program: Program =
//!     "sat(descendants(descendants(root, text(kw(0.80))), leaf), true) -> \
//!      filter(split(content, ','), kw(0.50))"
//!         .parse()?;
//!
//! let ctx = QueryContext::new(
//!     "Which program committees has this researcher served on?",
//!     ["PC", "Program Committee", "Service"],
//! );
//! let page = PageTree::parse(
//!     "<h1>Jane Doe</h1><h2>Service</h2>\
//!      <ul><li>PLDI '21 (PC), POPL '20 (PC)</li></ul>",
//! );
//! let answers = program.eval(&ctx, &page);
//! assert!(answers.iter().any(|a| a.contains("PLDI '21")));
//! # Ok(())
//! # }
//! ```
//!
//! # Static analysis
//!
//! Beyond evaluation, the crate ships two static passes over programs:
//!
//! * [`lint`] — syntactic well-formedness diagnostics (off-grid
//!   thresholds, depth bounds, no-op filters…);
//! * [`analysis`] — a **sound abstract interpreter** deriving
//!   page-independent verdicts from the query-context facts alone:
//!   output emptiness (a branch or whole program provably returns `∅`),
//!   guard subsumption (a later branch's guard semantically implies an
//!   earlier one's, so the branch can never fire), and equivalence up to
//!   normalization (a canonical dedup key extending [`normalize`] with
//!   the analysis-proven rewrites). [`lint`]'s dead-branch diagnostic
//!   delegates to the semantic subsumption lattice, and the synthesizer
//!   (`webqa_synth`) consults the same facts to prune candidates that
//!   are provably dead before building or scoring them.
//!
//! Every definite verdict is a theorem about the definitional semantics
//! — `tests/analysis_soundness.rs` (workspace root) property-tests the
//! analyzer against [`Program::eval`] on random generator pages.

#![warn(missing_docs)]

pub mod analysis;
mod ast;
mod context;
mod eval;
mod lint;
mod normalize;
mod parse;
mod print;

pub use analysis::{AnalysisReport, Analyzer, BranchAnalysis, LocatorCard, Truth};
pub use ast::{Branch, Extractor, Guard, Locator, NlpPred, NodeFilter, Program, Threshold};
pub use context::QueryContext;
pub use lint::{lint, LintIssue, LintReport};
pub use normalize::normalize;
pub use parse::ParseProgramError;

// Re-export the neighbouring vocabulary users need to build programs.
pub use webqa_html::{
    HtmlError, NodeKind, PageNode, PageNodeId, PageTree, PageTreeBuilder, ParseDiagnostics,
};
pub use webqa_nlp::{EntityKind, EntityRecognizer, QaModel};
