//! # webqa-dsl
//!
//! The WebQA neurosymbolic domain-specific language (Section 4 of the
//! paper): abstract syntax (Figure 5), typed evaluation semantics
//! (Figure 6), a canonical text format with parser, and the paper's
//! λ-notation pretty printer.
//!
//! A program maps `(Question, Keywords, Webpage) → Set<String>`:
//!
//! ```
//! use webqa_dsl::{Program, QueryContext};
//! use webqa_html::PageTree;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Locate leaves under sections matching the keywords, then split on
//! // commas and keep keyword-matching parts (the paper's Eq. 1 + Eq. 2).
//! let program: Program =
//!     "sat(descendants(descendants(root, text(kw(0.80))), leaf), true) -> \
//!      filter(split(content, ','), kw(0.50))"
//!         .parse()?;
//!
//! let ctx = QueryContext::new(
//!     "Which program committees has this researcher served on?",
//!     ["PC", "Program Committee", "Service"],
//! );
//! let page = PageTree::parse(
//!     "<h1>Jane Doe</h1><h2>Service</h2>\
//!      <ul><li>PLDI '21 (PC), POPL '20 (PC)</li></ul>",
//! );
//! let answers = program.eval(&ctx, &page);
//! assert!(answers.iter().any(|a| a.contains("PLDI '21")));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod ast;
mod context;
mod eval;
mod lint;
mod normalize;
mod parse;
mod print;

pub use ast::{Branch, Extractor, Guard, Locator, NlpPred, NodeFilter, Program, Threshold};
pub use context::QueryContext;
pub use lint::{lint, LintIssue, LintReport};
pub use normalize::normalize;
pub use parse::ParseProgramError;

// Re-export the neighbouring vocabulary users need to build programs.
pub use webqa_html::{HtmlError, NodeKind, PageNodeId, PageTree};
pub use webqa_nlp::{EntityKind, EntityRecognizer, QaModel};
