//! Query context: the `(Q, K)` inputs of a WebQA program plus memoized
//! access to the neural modules.
//!
//! The synthesizer evaluates the same NLP predicates on the same strings
//! thousands of times; a [`QueryContext`] caches `matchKeyword` scores, QA
//! answerability, and recognized entities per string, which is what makes
//! enumerative search tractable (the real system relies on the same trick —
//! neural-module calls dominate its synthesis time, Table 3).
//!
//! The caches are behind [`Mutex`]es (not `RefCell`s) so one context can
//! be shared by the synthesizer's branch-level worker threads
//! (`SynthConfig::jobs`); uncontended locking costs nanoseconds and the
//! hot search paths read precomputed per-task feature tables instead of
//! hitting these caches per candidate.

use std::collections::HashMap;
use std::sync::Mutex;

use webqa_nlp::{best_keyword_similarity, Entity, EntityKind, EntityRecognizer, QaModel};

/// The question/keyword inputs plus cached neural modules.
#[derive(Debug)]
pub struct QueryContext {
    question: String,
    keywords: Vec<String>,
    qa: QaModel,
    ner: EntityRecognizer,
    kw_cache: Mutex<HashMap<String, f64>>,
    qa_cache: Mutex<HashMap<String, bool>>,
    ent_cache: Mutex<HashMap<String, Vec<Entity>>>,
}

impl QueryContext {
    /// Creates a context with the default pretrained models.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(question: &str, keywords: I) -> Self {
        QueryContext {
            question: question.to_string(),
            keywords: keywords.into_iter().map(Into::into).collect(),
            qa: QaModel::pretrained(),
            ner: EntityRecognizer::pretrained(),
            kw_cache: Mutex::new(HashMap::new()),
            qa_cache: Mutex::new(HashMap::new()),
            ent_cache: Mutex::new(HashMap::new()),
        }
    }

    /// A context with explicit neural modules instead of the pretrained
    /// defaults.
    ///
    /// This is how model imperfection is injected in tests and ablations:
    /// the paper's Key Idea #2 (Section 2) observes that when, say, the
    /// entity model cannot recognize conference names as organizations,
    /// *no* DSL program matches the labels exactly and synthesis must
    /// optimize F₁ instead — swapping the [`EntityRecognizer`] here is
    /// what exercises that path deterministically.
    pub fn with_models<S: Into<String>, I: IntoIterator<Item = S>>(
        question: &str,
        keywords: I,
        qa: QaModel,
        ner: EntityRecognizer,
    ) -> Self {
        QueryContext {
            question: question.to_string(),
            keywords: keywords.into_iter().map(Into::into).collect(),
            qa,
            ner,
            kw_cache: Mutex::new(HashMap::new()),
            qa_cache: Mutex::new(HashMap::new()),
            ent_cache: Mutex::new(HashMap::new()),
        }
    }

    /// A context without keywords (the paper's `WebQA-NL` ablation).
    pub fn question_only(question: &str) -> Self {
        Self::new(question, Vec::<String>::new())
    }

    /// A context without a question (the paper's `WebQA-KW` ablation).
    pub fn keywords_only<S: Into<String>, I: IntoIterator<Item = S>>(keywords: I) -> Self {
        Self::new("", keywords)
    }

    /// The natural-language question `Q`.
    pub fn question(&self) -> &str {
        &self.question
    }

    /// The keywords `K`.
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// Best keyword similarity of `text` against `K` (cached).
    /// 0.0 when there are no keywords.
    pub fn keyword_score(&self, text: &str) -> f64 {
        if self.keywords.is_empty() {
            return 0.0;
        }
        if let Some(&s) = self.kw_cache.lock().expect("cache lock").get(text) {
            return s;
        }
        let s = f64::from(best_keyword_similarity(text, &self.keywords));
        self.kw_cache
            .lock()
            .expect("cache lock")
            .insert(text.to_string(), s);
        s
    }

    /// Whether the QA model finds an answer to `Q` in `text` (cached).
    /// `false` when the context has no question.
    pub fn has_answer(&self, text: &str) -> bool {
        if self.question.is_empty() {
            return false;
        }
        if let Some(&b) = self.qa_cache.lock().expect("cache lock").get(text) {
            return b;
        }
        let b = self.qa.has_answer(text, &self.question);
        self.qa_cache
            .lock()
            .expect("cache lock")
            .insert(text.to_string(), b);
        b
    }

    /// The QA model's best answer span in `text`, if any (not cached — used
    /// only during extraction, not search).
    pub fn answer(&self, text: &str) -> Option<String> {
        if self.question.is_empty() {
            return None;
        }
        self.qa.answer(text, &self.question).map(|a| a.text)
    }

    /// Byte span of the QA model's best answer in `text`, if any.
    pub fn answer_span(&self, text: &str) -> Option<(usize, usize)> {
        if self.question.is_empty() {
            return None;
        }
        self.qa
            .answer(text, &self.question)
            .map(|a| (a.start, a.end))
    }

    /// All entities in `text` (cached).
    pub fn entities(&self, text: &str) -> Vec<Entity> {
        if let Some(es) = self.ent_cache.lock().expect("cache lock").get(text) {
            return es.clone();
        }
        let es = self.ner.entities(text);
        self.ent_cache
            .lock()
            .expect("cache lock")
            .insert(text.to_string(), es.clone());
        es
    }

    /// Whether `text` contains an entity of `kind` (cached via
    /// [`QueryContext::entities`]).
    pub fn has_entity(&self, text: &str, kind: EntityKind) -> bool {
        self.entities(text).iter().any(|e| e.kind == kind)
    }

    /// Entity surface strings of `kind` in `text`, in order.
    pub fn entity_strings(&self, text: &str, kind: EntityKind) -> Vec<String> {
        self.entities(text)
            .into_iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.text)
            .collect()
    }

    /// Number of distinct strings cached so far (diagnostics).
    pub fn cache_size(&self) -> usize {
        self.kw_cache.lock().expect("cache lock").len()
            + self.qa_cache.lock().expect("cache lock").len()
            + self.ent_cache.lock().expect("cache lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_score_cached_and_stable() {
        let ctx = QueryContext::new("Who?", ["Students"]);
        let a = ctx.keyword_score("PhD Students");
        let b = ctx.keyword_score("PhD Students");
        assert_eq!(a, b);
        assert_eq!(a, 1.0);
        assert!(ctx.cache_size() >= 1);
    }

    #[test]
    fn empty_keywords_score_zero() {
        let ctx = QueryContext::question_only("Who are the students?");
        assert_eq!(ctx.keyword_score("Students"), 0.0);
    }

    #[test]
    fn empty_question_never_answers() {
        let ctx = QueryContext::keywords_only(["Students"]);
        assert!(!ctx.has_answer("Instructor: Jane Doe."));
        assert_eq!(ctx.answer("Instructor: Jane Doe."), None);
    }

    #[test]
    fn entity_queries() {
        let ctx = QueryContext::new("", ["x"]);
        assert!(ctx.has_entity("Jane Doe", EntityKind::Person));
        assert_eq!(
            ctx.entity_strings("Jane Doe and Robert Smith", EntityKind::Person)
                .len(),
            2
        );
    }

    #[test]
    fn qa_through_context() {
        let ctx = QueryContext::new("Who is the instructor?", Vec::<String>::new());
        assert!(ctx.has_answer("Instructor: Jane Doe."));
        assert!(ctx
            .answer("Instructor: Jane Doe.")
            .unwrap()
            .contains("Jane"));
    }
}
