//! Abstract interpretation of WebQA programs.
//!
//! The evaluator ([`crate::ast::Program::eval`]) answers "what does this
//! program return on *this* page"; the analyzer answers what can be known
//! about a program on **every** page, given only the query-context facts
//! that are independent of page content (whether keywords exist, whether
//! a question was asked). Three verdict families come out:
//!
//! * **Output emptiness** — an extractor or a whole branch provably
//!   returns `∅` for every page under the context
//!   ([`Analyzer::extractor_empty`], [`AnalysisReport::always_empty`]):
//!   `matchKeyword` with no keywords, a `Substring` over a negation, a
//!   `Filter` under a predicate that is `⊥`.
//! * **Guard subsumption** — branch *i*'s guard semantically implies an
//!   earlier branch *j*'s guard ([`Analyzer::guard_implies`]), so branch
//!   *i* can never fire. The implication is decided over a lattice of
//!   [`NlpPred`] / [`NodeFilter`] / [`Locator`] relations
//!   ([`Analyzer::pred_implies`], [`Analyzer::filter_implies`],
//!   [`Analyzer::locator_subset`]), not by byte equality.
//! * **Equivalence up to normalization** — [`Analyzer::canonical_key`]
//!   extends [`crate::normalize`] with the analysis-proven rewrites
//!   (drop `⊥`-guard branches, drop subsumed branches, truncate after a
//!   `⊤` guard, print provably-empty extractors as `∅`), producing a
//!   dedup key: programs with equal keys evaluate identically on every
//!   page under the context.
//!
//! # Soundness
//!
//! Every verdict is *conservative*: the analyzer may answer
//! [`Truth::Unknown`] (or `false` for the boolean judgements) whenever it
//! cannot prove a fact, but a definite answer is a theorem about the
//! definitional semantics. `tests/analysis_soundness.rs` holds the
//! analyzer to that contract with a property test: any verdict
//! contradicted by [`crate::ast::Program::eval`] on a random page is a
//! bug in the analyzer, never an accepted imprecision.
//!
//! The two-semantics subtlety documented in [`crate::normalize`] applies
//! here too: boolean laws are used only for `eval` positions, and span
//! extraction ([`NlpPred::extract`]) gets its own emptiness judgement
//! ([`Analyzer::pred_extract_empty`]) in which `¬φ` *is* provably empty
//! while `⊤` is not.

use std::fmt;

use crate::ast::{Extractor, Guard, Locator, NlpPred, NodeFilter, Program};
use crate::context::QueryContext;
use crate::normalize;

/// Three-valued (Kleene) truth of a predicate over *all* inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth {
    /// Holds for every input string / page.
    True,
    /// Holds for no input string / page.
    False,
    /// Not decided by the abstraction.
    Unknown,
}

impl Truth {
    fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Truth::True => write!(f, "always true"),
            Truth::False => write!(f, "always false"),
            Truth::Unknown => write!(f, "unknown"),
        }
    }
}

/// Abstract cardinality of a locator's node set on an arbitrary page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocatorCard {
    /// Exactly one node on every page (only `GetRoot`).
    ExactlyOne,
    /// No nodes on any page.
    Empty,
    /// Anything from zero to many.
    Unknown,
}

/// The abstract interpreter: the page-independent facts of one
/// [`QueryContext`], from which all verdicts are derived.
///
/// Cheap to construct and `Copy` — the synthesizer builds one per task.
#[derive(Debug, Clone, Copy)]
pub struct Analyzer {
    has_keywords: bool,
    has_question: bool,
}

impl Analyzer {
    /// Captures the context facts the abstraction reads:
    /// `keyword_score ≡ 0` when there are no keywords, and
    /// `hasAnswer ≡ ⊥` when there is no question.
    pub fn new(ctx: &QueryContext) -> Self {
        Analyzer {
            has_keywords: !ctx.keywords().is_empty(),
            has_question: !ctx.question().is_empty(),
        }
    }

    /// Truth of `p.eval(ctx, z)` over all strings `z`.
    pub fn pred_truth(&self, p: &NlpPred) -> Truth {
        match p {
            NlpPred::MatchKeyword(t) => {
                let zero_threshold = t.value() == 0.0;
                if !self.has_keywords {
                    // keyword_score is identically 0.0 without keywords.
                    if zero_threshold {
                        Truth::True
                    } else {
                        Truth::False
                    }
                } else if zero_threshold {
                    // Scores live in [0, 1], so `score ≥ 0` always holds.
                    Truth::True
                } else {
                    Truth::Unknown
                }
            }
            NlpPred::HasAnswer => {
                if self.has_question {
                    Truth::Unknown
                } else {
                    Truth::False
                }
            }
            NlpPred::HasEntity(_) => Truth::Unknown,
            NlpPred::True => Truth::True,
            NlpPred::And(a, b) => self.pred_truth(a).and(self.pred_truth(b)),
            NlpPred::Or(a, b) => self.pred_truth(a).or(self.pred_truth(b)),
            NlpPred::Not(a) => self.pred_truth(a).not(),
        }
    }

    /// Whether `p.extract(ctx, z)` is provably empty for every string
    /// `z` — the *span* semantics used by `Substring`, which differs
    /// from boolean truth (`¬φ` extracts nothing even when `¬φ` holds).
    pub fn pred_extract_empty(&self, p: &NlpPred) -> bool {
        match p {
            // Windows only qualify with score ≥ t; without keywords every
            // score is 0, so a positive threshold admits none.
            NlpPred::MatchKeyword(t) => !self.has_keywords && t.value() > 0.0,
            NlpPred::HasAnswer => !self.has_question,
            NlpPred::HasEntity(_) | NlpPred::True => false,
            // `And` extracts a's spans filtered by b's boolean truth.
            NlpPred::And(a, b) => self.pred_extract_empty(a) || self.pred_truth(b) == Truth::False,
            NlpPred::Or(a, b) => self.pred_extract_empty(a) && self.pred_extract_empty(b),
            NlpPred::Not(_) => true,
        }
    }

    /// Truth of `f.eval(ctx, page, n)` over all pages and nodes.
    pub fn filter_truth(&self, f: &NodeFilter) -> Truth {
        match f {
            NodeFilter::IsLeaf | NodeFilter::IsElem => Truth::Unknown,
            NodeFilter::MatchText { pred, .. } => self.pred_truth(pred),
            NodeFilter::True => Truth::True,
            NodeFilter::And(a, b) => self.filter_truth(a).and(self.filter_truth(b)),
            NodeFilter::Or(a, b) => self.filter_truth(a).or(self.filter_truth(b)),
            NodeFilter::Not(a) => self.filter_truth(a).not(),
        }
    }

    /// Abstract cardinality of `l.eval(ctx, page)` over all pages.
    pub fn locator_card(&self, l: &Locator) -> LocatorCard {
        match l {
            Locator::Root => LocatorCard::ExactlyOne,
            Locator::Children(inner, f) | Locator::Descendants(inner, f) => {
                if self.locator_card(inner) == LocatorCard::Empty
                    || self.filter_truth(f) == Truth::False
                {
                    LocatorCard::Empty
                } else {
                    LocatorCard::Unknown
                }
            }
        }
    }

    /// Truth of `g.eval(ctx, page)` over all pages.
    pub fn guard_truth(&self, g: &Guard) -> Truth {
        match g {
            Guard::Sat(l, p) => {
                let card = self.locator_card(l);
                let pred = self.pred_truth(p);
                if card == LocatorCard::Empty || pred == Truth::False {
                    // `∃ node. p(node)` over no nodes, or an unsatisfiable
                    // predicate, is false.
                    Truth::False
                } else if card == LocatorCard::ExactlyOne && pred == Truth::True {
                    Truth::True
                } else {
                    Truth::Unknown
                }
            }
            Guard::IsSingleton(l) => match self.locator_card(l) {
                LocatorCard::ExactlyOne => Truth::True,
                LocatorCard::Empty => Truth::False,
                LocatorCard::Unknown => Truth::Unknown,
            },
        }
    }

    /// Whether `e.eval(ctx, page, nodes)` is provably `∅` for every page
    /// and node set.
    pub fn extractor_empty(&self, e: &Extractor) -> bool {
        match e {
            Extractor::Content => false,
            Extractor::Substring(inner, p, k) => {
                self.extractor_empty(inner) || self.pred_extract_empty(p) || *k == 0
            }
            Extractor::Filter(inner, p) => {
                self.extractor_empty(inner) || self.pred_truth(p) == Truth::False
            }
            Extractor::Split(inner, _) => self.extractor_empty(inner),
        }
    }

    /// Pointwise implication of boolean predicate semantics:
    /// `∀z. p(z) ⇒ q(z)`. Conservative — `false` means "not proved".
    pub fn pred_implies(&self, p: &NlpPred, q: &NlpPred) -> bool {
        if p == q || self.pred_truth(q) == Truth::True || self.pred_truth(p) == Truth::False {
            return true;
        }
        // Structural rules on either side, tried in turn.
        if let NlpPred::And(a, b) = p {
            if self.pred_implies(a, q) || self.pred_implies(b, q) {
                return true;
            }
        }
        if let NlpPred::Or(a, b) = p {
            if self.pred_implies(a, q) && self.pred_implies(b, q) {
                return true;
            }
        }
        match (p, q) {
            // A higher similarity bar is the stronger predicate.
            (NlpPred::MatchKeyword(t1), NlpPred::MatchKeyword(t2)) => t1 >= t2,
            (_, NlpPred::And(a, b)) => self.pred_implies(p, a) && self.pred_implies(p, b),
            (_, NlpPred::Or(a, b)) => self.pred_implies(p, a) || self.pred_implies(p, b),
            (NlpPred::Not(a), NlpPred::Not(b)) => self.pred_implies(b, a),
            _ => false,
        }
    }

    /// Pointwise implication of node filters:
    /// `∀page, n. f(n) ⇒ g(n)`.
    pub fn filter_implies(&self, f: &NodeFilter, g: &NodeFilter) -> bool {
        if f == g || self.filter_truth(g) == Truth::True || self.filter_truth(f) == Truth::False {
            return true;
        }
        if let NodeFilter::And(a, b) = f {
            if self.filter_implies(a, g) || self.filter_implies(b, g) {
                return true;
            }
        }
        if let NodeFilter::Or(a, b) = f {
            if self.filter_implies(a, g) && self.filter_implies(b, g) {
                return true;
            }
        }
        match (f, g) {
            (
                NodeFilter::MatchText {
                    pred: p1,
                    subtree: s1,
                },
                NodeFilter::MatchText {
                    pred: p2,
                    subtree: s2,
                },
            ) => s1 == s2 && self.pred_implies(p1, p2),
            (_, NodeFilter::And(a, b)) => self.filter_implies(f, a) && self.filter_implies(f, b),
            (_, NodeFilter::Or(a, b)) => self.filter_implies(f, a) || self.filter_implies(f, b),
            (NodeFilter::Not(a), NodeFilter::Not(b)) => self.filter_implies(b, a),
            _ => false,
        }
    }

    /// Whether `a`'s node set is a subset of `b`'s on every page.
    pub fn locator_subset(&self, a: &Locator, b: &Locator) -> bool {
        if a == b || self.locator_card(a) == LocatorCard::Empty {
            return true;
        }
        match (a, b) {
            (Locator::Children(la, fa), Locator::Children(lb, fb)) => {
                self.locator_subset(la, lb) && self.filter_implies(fa, fb)
            }
            (Locator::Descendants(la, fa), Locator::Descendants(lb, fb)) => {
                // Descendants of a subset are a subset of descendants.
                if self.locator_subset(la, lb) && self.filter_implies(fa, fb) {
                    return true;
                }
                // Any non-root locator selects only strict descendants of
                // the root, whatever its spine.
                matches!(**lb, Locator::Root) && self.filter_implies(fa, fb)
            }
            (Locator::Children(la, fa), Locator::Descendants(lb, fb)) => {
                // children(S) ⊆ descendants(S).
                if self.locator_subset(la, lb) && self.filter_implies(fa, fb) {
                    return true;
                }
                matches!(**lb, Locator::Root) && self.filter_implies(fa, fb)
            }
            _ => false,
        }
    }

    /// Whether guard `a` implies guard `b` on every page — the engine of
    /// semantic dead-branch detection: in `{…, b → e, …, a → e', …}` the
    /// later branch can never fire.
    pub fn guard_implies(&self, a: &Guard, b: &Guard) -> bool {
        if a == b || self.guard_truth(b) == Truth::True {
            return true;
        }
        match (a, b) {
            (Guard::Sat(l1, p1), Guard::Sat(l2, p2)) => {
                // The witness node of a is in b's (super)set and satisfies
                // the weaker predicate.
                self.locator_subset(l1, l2) && self.pred_implies(p1, p2)
            }
            (Guard::IsSingleton(l1), Guard::Sat(l2, p2)) => {
                // The singleton node lies in l2 and p2 always holds.
                self.locator_subset(l1, l2) && self.pred_truth(p2) == Truth::True
            }
            _ => false,
        }
    }

    /// Runs all verdict families over a program; see [`AnalysisReport`].
    pub fn analyze(&self, program: &Program) -> AnalysisReport {
        let branches: Vec<BranchAnalysis> = program
            .branches
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let earlier = &program.branches[..i];
                // Byte-identical guards first (they read best in reports),
                // then the semantic implication scan.
                let subsumed_by = earlier.iter().position(|e| e.guard == b.guard).or_else(|| {
                    earlier
                        .iter()
                        .position(|e| self.guard_implies(&b.guard, &e.guard))
                });
                BranchAnalysis {
                    guard: self.guard_truth(&b.guard),
                    subsumed_by,
                    extractor_empty: self.extractor_empty(&b.extractor),
                }
            })
            .collect();
        let always_empty = branches
            .iter()
            .all(|b| b.guard == Truth::False || b.extractor_empty);
        AnalysisReport {
            branches,
            always_empty,
            canonical_key: self.canonical_key(program),
        }
    }

    /// [`crate::normalize`] extended with the analysis-proven rewrites:
    /// drops branches whose guard is provably false, drops branches whose
    /// guard implies an earlier kept guard (they can never fire), and
    /// stops after a provably-true guard (later branches are dead).
    ///
    /// The result evaluates identically to the input on every page under
    /// the context (held by the soundness harness).
    pub fn canonicalize(&self, program: &Program) -> Program {
        let normalized = normalize::normalize(program);
        let mut kept: Vec<crate::ast::Branch> = Vec::new();
        for b in normalized.branches {
            if self.guard_truth(&b.guard) == Truth::False {
                continue;
            }
            if kept.iter().any(|k| self.guard_implies(&b.guard, &k.guard)) {
                continue;
            }
            kept.push(b);
        }
        Program::new(kept)
    }

    /// The program-dedup key: the canonical form rendered with
    /// provably-empty extractors printed as `∅`. Equal keys ⇒ equal
    /// outputs on every page under the context. The empty extractors are
    /// masked only in the *key*, never rewritten in the AST — a firing
    /// branch with an empty extractor still shadows later branches, so
    /// removing it would change the semantics.
    pub fn canonical_key(&self, program: &Program) -> String {
        let canonical = self.canonicalize(program);
        let parts: Vec<String> = canonical
            .branches
            .iter()
            .map(|b| {
                if self.extractor_empty(&b.extractor) {
                    format!("{} -> ∅", b.guard)
                } else {
                    format!("{} -> {}", b.guard, b.extractor)
                }
            })
            .collect();
        parts.join("; ")
    }
}

/// Per-branch verdicts of [`Analyzer::analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchAnalysis {
    /// Abstract truth of the branch's guard over all pages.
    pub guard: Truth,
    /// `Some(j)`: the guard implies branch `j`'s guard (`j` earlier), so
    /// this branch can never fire. Byte-identical guards take precedence
    /// in the choice of `j`.
    pub subsumed_by: Option<usize>,
    /// The branch's extractor provably returns no strings.
    pub extractor_empty: bool,
}

/// All analyzer verdicts for one program under one context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Per-branch verdicts, in branch order.
    pub branches: Vec<BranchAnalysis>,
    /// The whole program provably returns `∅` on every page.
    pub always_empty: bool,
    /// The dedup key (see [`Analyzer::canonical_key`]).
    pub canonical_key: String,
}

impl AnalysisReport {
    /// True when no problem verdict fired: no guard is provably false,
    /// no branch is subsumed, and no extractor is provably empty. A
    /// provably-*true* guard is not a problem by itself (a final
    /// `sat(root, true)` catch-all is idiomatic); branches it shadows
    /// are reported through `subsumed_by`.
    pub fn is_clean(&self) -> bool {
        !self.always_empty
            && self
                .branches
                .iter()
                .all(|b| b.guard != Truth::False && b.subsumed_by.is_none() && !b.extractor_empty)
    }

    /// The verdict lines, one string per definite finding (empty when
    /// [`AnalysisReport::is_clean`]).
    pub fn verdicts(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (i, b) in self.branches.iter().enumerate() {
            if b.guard == Truth::False {
                out.push(format!("branch {i}: guard is provably false"));
            }
            if let Some(j) = b.subsumed_by {
                out.push(format!(
                    "branch {i}: guard is subsumed by branch {j}'s guard"
                ));
            }
            if b.extractor_empty {
                out.push(format!("branch {i}: extractor provably returns no strings"));
            }
        }
        if self.always_empty {
            out.push("program provably returns the empty set on every page".to_string());
        }
        out
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdicts = self.verdicts();
        if verdicts.is_empty() {
            return write!(f, "no verdicts");
        }
        for (i, v) in verdicts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Threshold;
    use webqa_nlp::EntityKind;

    fn kw(t: f64) -> NlpPred {
        NlpPred::MatchKeyword(Threshold::new(t))
    }

    fn full() -> Analyzer {
        Analyzer::new(&QueryContext::new("Who are the students?", ["Students"]))
    }

    fn no_keywords() -> Analyzer {
        Analyzer::new(&QueryContext::question_only("Who are the students?"))
    }

    fn no_question() -> Analyzer {
        Analyzer::new(&QueryContext::keywords_only(["Students"]))
    }

    fn parse(src: &str) -> Program {
        src.parse().expect("valid program")
    }

    #[test]
    fn keyword_truth_tracks_context() {
        assert_eq!(no_keywords().pred_truth(&kw(0.5)), Truth::False);
        assert_eq!(no_keywords().pred_truth(&kw(0.0)), Truth::True);
        assert_eq!(full().pred_truth(&kw(0.5)), Truth::Unknown);
        assert_eq!(full().pred_truth(&kw(0.0)), Truth::True);
        assert_eq!(no_question().pred_truth(&NlpPred::HasAnswer), Truth::False);
        assert_eq!(full().pred_truth(&NlpPred::HasAnswer), Truth::Unknown);
    }

    #[test]
    fn kleene_connectives() {
        let a = full();
        let f = NlpPred::Not(Box::new(NlpPred::True));
        assert_eq!(a.pred_truth(&f), Truth::False);
        let and = NlpPred::And(Box::new(kw(0.5)), Box::new(f.clone()));
        assert_eq!(a.pred_truth(&and), Truth::False);
        let or = NlpPred::Or(Box::new(kw(0.5)), Box::new(NlpPred::True));
        assert_eq!(a.pred_truth(&or), Truth::True);
    }

    #[test]
    fn extract_emptiness_differs_from_truth() {
        let a = full();
        // ¬⊤ is boolean-false AND extract-empty; ¬¬⊤ is boolean-true but
        // STILL extract-empty (negations extract nothing).
        let nn = NlpPred::Not(Box::new(NlpPred::Not(Box::new(NlpPred::True))));
        assert_eq!(a.pred_truth(&nn), Truth::True);
        assert!(a.pred_extract_empty(&nn));
        assert!(!a.pred_extract_empty(&NlpPred::True));
        assert!(no_keywords().pred_extract_empty(&kw(0.5)));
        assert!(!no_keywords().pred_extract_empty(&kw(0.0)));
        assert!(no_question().pred_extract_empty(&NlpPred::HasAnswer));
        assert!(!full().pred_extract_empty(&NlpPred::HasAnswer));
    }

    #[test]
    fn locator_cardinality() {
        let a = no_keywords();
        assert_eq!(a.locator_card(&Locator::Root), LocatorCard::ExactlyOne);
        let dead = Locator::Children(
            Box::new(Locator::Root),
            NodeFilter::MatchText {
                pred: kw(0.5),
                subtree: false,
            },
        );
        assert_eq!(a.locator_card(&dead), LocatorCard::Empty);
        // Anything built over an empty locator stays empty.
        let nested = Locator::Descendants(Box::new(dead), NodeFilter::True);
        assert_eq!(a.locator_card(&nested), LocatorCard::Empty);
        let live = Locator::leaves(Locator::Root);
        assert_eq!(a.locator_card(&live), LocatorCard::Unknown);
    }

    #[test]
    fn guard_truth_verdicts() {
        let a = no_keywords();
        let g = parse("sat(root, kw(0.50)) -> content").branches[0]
            .guard
            .clone();
        assert_eq!(a.guard_truth(&g), Truth::False);
        assert_eq!(
            a.guard_truth(&Guard::Sat(Locator::Root, NlpPred::True)),
            Truth::True
        );
        assert_eq!(
            a.guard_truth(&Guard::IsSingleton(Locator::Root)),
            Truth::True
        );
        assert_eq!(
            a.guard_truth(&Guard::IsSingleton(Locator::leaves(Locator::Root))),
            Truth::Unknown
        );
    }

    #[test]
    fn extractor_emptiness() {
        let a = full();
        let e = |src: &str| {
            parse(&format!("sat(root, true) -> {src}")).branches[0]
                .extractor
                .clone()
        };
        assert!(a.extractor_empty(&e("substr(content, not(entity(PERSON)), 1)")));
        assert!(a.extractor_empty(&e("split(substr(content, not(entity(PERSON)), 1), ',')")));
        assert!(!a.extractor_empty(&e("filter(content, kw(0.50))")));
        assert!(no_keywords().extractor_empty(&e("filter(content, kw(0.50))")));
        assert!(!a.extractor_empty(&e("content")));
    }

    #[test]
    fn threshold_implication_ladder() {
        let a = full();
        assert!(a.pred_implies(&kw(0.8), &kw(0.5)));
        assert!(!a.pred_implies(&kw(0.5), &kw(0.8)));
        assert!(a.pred_implies(&kw(0.5), &kw(0.5)));
        // And/Or structure.
        let and = NlpPred::And(Box::new(kw(0.8)), Box::new(NlpPred::HasAnswer));
        assert!(a.pred_implies(&and, &kw(0.5)));
        assert!(a.pred_implies(&and, &NlpPred::HasAnswer));
        let or = NlpPred::Or(Box::new(kw(0.8)), Box::new(kw(0.9)));
        assert!(a.pred_implies(&or, &kw(0.5)));
        assert!(!a.pred_implies(&or, &kw(0.85)));
        assert!(a.pred_implies(&kw(0.8), &or.clone()));
        // Contrapositive.
        assert!(a.pred_implies(
            &NlpPred::Not(Box::new(kw(0.5))),
            &NlpPred::Not(Box::new(kw(0.8)))
        ));
        // Everything implies ⊤; ⊥ implies everything.
        assert!(a.pred_implies(&NlpPred::HasEntity(EntityKind::Date), &NlpPred::True));
        assert!(no_keywords().pred_implies(&kw(0.5), &NlpPred::HasAnswer));
    }

    #[test]
    fn filter_implication_respects_subtree_flag() {
        let a = full();
        let own = NodeFilter::MatchText {
            pred: kw(0.8),
            subtree: false,
        };
        let own_weak = NodeFilter::MatchText {
            pred: kw(0.5),
            subtree: false,
        };
        let sub_weak = NodeFilter::MatchText {
            pred: kw(0.5),
            subtree: true,
        };
        assert!(a.filter_implies(&own, &own_weak));
        assert!(!a.filter_implies(&own, &sub_weak), "subtree flags differ");
        assert!(a.filter_implies(&NodeFilter::IsLeaf, &NodeFilter::True));
        assert!(!a.filter_implies(&NodeFilter::IsLeaf, &NodeFilter::IsElem));
        let and = NodeFilter::And(Box::new(NodeFilter::IsLeaf), Box::new(own.clone()));
        assert!(a.filter_implies(&and, &NodeFilter::IsLeaf));
        assert!(a.filter_implies(&and, &own_weak));
    }

    #[test]
    fn locator_subset_rules() {
        let a = full();
        let text = |t: f64| NodeFilter::MatchText {
            pred: kw(t),
            subtree: false,
        };
        let strong = Locator::Descendants(Box::new(Locator::Root), text(0.8));
        let weak = Locator::Descendants(Box::new(Locator::Root), text(0.5));
        assert!(a.locator_subset(&strong, &weak));
        assert!(!a.locator_subset(&weak, &strong));
        // children ⊆ descendants over the same spine.
        let kids = Locator::Children(Box::new(Locator::Root), text(0.8));
        assert!(a.locator_subset(&kids, &weak));
        // Deep locators are subsets of descendants(root, ·) when the
        // filter weakens: every located node is a strict descendant.
        let deep = Locator::Children(Box::new(kids.clone()), text(0.8));
        let all = Locator::Descendants(Box::new(Locator::Root), NodeFilter::True);
        assert!(a.locator_subset(&deep, &all));
        assert!(a.locator_subset(&kids, &all));
        // Root is NOT a subset of descendants(root): root isn't its own
        // descendant.
        assert!(!a.locator_subset(&Locator::Root, &all));
    }

    #[test]
    fn guard_implication_and_subsumption() {
        let a = full();
        let p = parse(
            "sat(descendants(root, text(kw(0.80))), kw(0.80)) -> content; \
             sat(descendants(root, text(kw(0.50))), kw(0.50)) -> content",
        );
        assert!(a.guard_implies(&p.branches[0].guard, &p.branches[1].guard));
        assert!(!a.guard_implies(&p.branches[1].guard, &p.branches[0].guard));
        // Reversed order: the report pins branch 1 as subsumed.
        let rev = parse(
            "sat(descendants(root, text(kw(0.50))), kw(0.50)) -> content; \
             sat(descendants(root, text(kw(0.80))), kw(0.80)) -> content",
        );
        let report = a.analyze(&rev);
        assert_eq!(report.branches[0].subsumed_by, None);
        assert_eq!(report.branches[1].subsumed_by, Some(0));
        // Singleton implies Sat over a superset locator with ⊤.
        let s = Guard::IsSingleton(Locator::leaves(Locator::Root));
        let t = Guard::Sat(
            Locator::Descendants(Box::new(Locator::Root), NodeFilter::True),
            NlpPred::True,
        );
        assert!(a.guard_implies(&s, &t));
    }

    #[test]
    fn byte_identical_guards_win_subsumption_attribution() {
        let a = full();
        // Branch 2's guard implies branch 0's (weaker) AND equals branch
        // 1's; the byte-identical match must be reported.
        let p = parse(
            "sat(root, kw(0.50)) -> content; \
             sat(root, kw(0.80)) -> content; \
             sat(root, kw(0.80)) -> split(content, ',')",
        );
        let report = a.analyze(&p);
        assert_eq!(report.branches[1].subsumed_by, Some(0));
        assert_eq!(report.branches[2].subsumed_by, Some(1));
    }

    #[test]
    fn always_empty_program() {
        let a = no_keywords();
        let p = parse(
            "sat(root, kw(0.50)) -> content; \
             sat(root, true) -> filter(content, kw(0.60))",
        );
        let report = a.analyze(&p);
        assert_eq!(report.branches[0].guard, Truth::False);
        assert!(report.branches[1].extractor_empty);
        assert!(report.always_empty);
        // With keywords available nothing is provable.
        let report = full().analyze(&p);
        assert!(!report.always_empty);
        assert!(report.is_clean());
    }

    #[test]
    fn canonicalization_drops_proven_dead_branches() {
        let a = no_keywords();
        let p = parse(
            "sat(root, kw(0.50)) -> content; \
             sat(root, true) -> split(content, ','); \
             singleton(root) -> content",
        );
        let c = a.canonicalize(&p);
        // Branch 0 is ⊥, branch 2 follows a ⊤ guard: only branch 1 stays.
        assert_eq!(c.branches.len(), 1);
        assert_eq!(c.to_string(), "sat(root, true) -> split(content, ',')");
    }

    #[test]
    fn canonical_keys_identify_equivalent_programs() {
        let a = no_keywords();
        // Same behavior three ways: a ⊥ first branch, boolean noise, and
        // an extra subsumed branch.
        let p1 = parse("sat(root, kw(0.50)) -> content; sat(root, true) -> content");
        let p2 = parse("sat(root, and(true, true)) -> content");
        let p3 = parse("sat(root, true) -> content; sat(root, true) -> split(content, ',')");
        let k1 = a.canonical_key(&p1);
        assert_eq!(k1, a.canonical_key(&p2));
        assert_eq!(k1, a.canonical_key(&p3));
        // Provably-empty extractors collapse to ∅ in the key.
        let e1 = parse("sat(root, true) -> filter(content, kw(0.60))");
        let e2 = parse("sat(root, true) -> substr(content, not(true), 1)");
        assert_eq!(a.canonical_key(&e1), a.canonical_key(&e2));
        assert!(a.canonical_key(&e1).contains('∅'));
        // …but NOT under a context where the filter might keep strings.
        assert_ne!(full().canonical_key(&e1), full().canonical_key(&e2));
    }

    #[test]
    fn report_display_and_verdict_lines() {
        let a = no_keywords();
        let p = parse("sat(root, kw(0.50)) -> content");
        let report = a.analyze(&p);
        let text = report.to_string();
        assert!(text.contains("branch 0: guard is provably false"), "{text}");
        assert!(text.contains("empty set"), "{text}");
        let clean = full().analyze(&parse("sat(root, kw(0.50)) -> content"));
        assert!(clean.is_clean());
        assert_eq!(clean.to_string(), "no verdicts");
    }
}
