//! Pretty-printing of DSL programs.
//!
//! Two renderings:
//!
//! * [`std::fmt::Display`] — a compact canonical form that the parser in
//!   [`crate::parse`] reads back (round-trip property-tested);
//! * [`Program::to_paper_syntax`] — the λ-notation of the paper's Figure 5,
//!   for human consumption in reports and examples.

use crate::ast::{Branch, Extractor, Guard, Locator, NlpPred, NodeFilter, Program};

impl std::fmt::Display for NlpPred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NlpPred::MatchKeyword(t) => write!(f, "kw({t})"),
            NlpPred::HasAnswer => write!(f, "answer"),
            NlpPred::HasEntity(k) => write!(f, "entity({k})"),
            NlpPred::True => write!(f, "true"),
            NlpPred::And(a, b) => write!(f, "and({a}, {b})"),
            NlpPred::Or(a, b) => write!(f, "or({a}, {b})"),
            NlpPred::Not(a) => write!(f, "not({a})"),
        }
    }
}

impl std::fmt::Display for NodeFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeFilter::IsLeaf => write!(f, "leaf"),
            NodeFilter::IsElem => write!(f, "elem"),
            NodeFilter::MatchText {
                pred,
                subtree: false,
            } => write!(f, "text({pred})"),
            NodeFilter::MatchText {
                pred,
                subtree: true,
            } => write!(f, "subtree({pred})"),
            NodeFilter::True => write!(f, "true"),
            NodeFilter::And(a, b) => write!(f, "and({a}, {b})"),
            NodeFilter::Or(a, b) => write!(f, "or({a}, {b})"),
            NodeFilter::Not(a) => write!(f, "not({a})"),
        }
    }
}

impl std::fmt::Display for Locator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Locator::Root => write!(f, "root"),
            Locator::Children(l, nf) => write!(f, "children({l}, {nf})"),
            Locator::Descendants(l, nf) => write!(f, "descendants({l}, {nf})"),
        }
    }
}

impl std::fmt::Display for Guard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Guard::Sat(l, p) => write!(f, "sat({l}, {p})"),
            Guard::IsSingleton(l) => write!(f, "singleton({l})"),
        }
    }
}

impl std::fmt::Display for Extractor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Extractor::Content => write!(f, "content"),
            Extractor::Substring(e, p, k) => write!(f, "substr({e}, {p}, {k})"),
            Extractor::Filter(e, p) => write!(f, "filter({e}, {p})"),
            Extractor::Split(e, c) => write!(f, "split({e}, '{c}')"),
        }
    }
}

impl std::fmt::Display for Branch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.guard, self.extractor)
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for b in &self.branches {
            if !first {
                write!(f, "; ")?;
            }
            write!(f, "{b}")?;
            first = false;
        }
        Ok(())
    }
}

impl Program {
    /// Renders the program in the λ-notation of the paper's Figure 5.
    pub fn to_paper_syntax(&self) -> String {
        let mut out = String::from("λQ,K,W. {\n");
        for b in &self.branches {
            out.push_str("  ");
            out.push_str(&guard_paper(&b.guard));
            out.push_str(" → λx. ");
            out.push_str(&extractor_paper(&b.extractor));
            out.push_str(",\n");
        }
        out.push('}');
        out
    }
}

fn pred_paper(p: &NlpPred) -> String {
    match p {
        NlpPred::MatchKeyword(t) => format!("matchKeyword(z, K, {t})"),
        NlpPred::HasAnswer => "hasAnswer(z, Q)".to_string(),
        NlpPred::HasEntity(k) => format!("hasEntity(z, {k})"),
        NlpPred::True => "⊤".to_string(),
        NlpPred::And(a, b) => format!("({} ∧ {})", pred_paper(a), pred_paper(b)),
        NlpPred::Or(a, b) => format!("({} ∨ {})", pred_paper(a), pred_paper(b)),
        NlpPred::Not(a) => format!("¬{}", pred_paper(a)),
    }
}

fn filter_paper(f: &NodeFilter) -> String {
    match f {
        NodeFilter::IsLeaf => "isLeaf(n)".to_string(),
        NodeFilter::IsElem => "isElem(n)".to_string(),
        NodeFilter::MatchText { pred, subtree } => {
            format!("matchText(n, λz. {}, {})", pred_paper(pred), subtree)
        }
        NodeFilter::True => "⊤".to_string(),
        NodeFilter::And(a, b) => format!("({} ∧ {})", filter_paper(a), filter_paper(b)),
        NodeFilter::Or(a, b) => format!("({} ∨ {})", filter_paper(a), filter_paper(b)),
        NodeFilter::Not(a) => format!("¬{}", filter_paper(a)),
    }
}

fn locator_paper(l: &Locator) -> String {
    match l {
        Locator::Root => "GetRoot(W)".to_string(),
        Locator::Children(inner, f) => {
            format!(
                "GetChildren({}, λn. {})",
                locator_paper(inner),
                filter_paper(f)
            )
        }
        Locator::Descendants(inner, f) => {
            format!(
                "GetDescendants({}, λn. {})",
                locator_paper(inner),
                filter_paper(f)
            )
        }
    }
}

fn guard_paper(g: &Guard) -> String {
    match g {
        Guard::Sat(l, p) => format!("Sat({}, λz. {})", locator_paper(l), pred_paper(p)),
        Guard::IsSingleton(l) => format!("IsSingleton({})", locator_paper(l)),
    }
}

fn extractor_paper(e: &Extractor) -> String {
    match e {
        Extractor::Content => "ExtractContent(x)".to_string(),
        Extractor::Substring(inner, p, k) => {
            format!(
                "Substring({}, λz. {}, {})",
                extractor_paper(inner),
                pred_paper(p),
                k
            )
        }
        Extractor::Filter(inner, p) => {
            format!("Filter({}, λz. {})", extractor_paper(inner), pred_paper(p))
        }
        Extractor::Split(inner, c) => {
            let c_name = if *c == ',' {
                "COMMA".to_string()
            } else {
                format!("{c:?}")
            };
            format!("Split({}, {})", extractor_paper(inner), c_name)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Threshold;
    use webqa_nlp::EntityKind;

    fn sample() -> Program {
        let locator = Locator::leaves(Locator::Descendants(
            Box::new(Locator::Root),
            NodeFilter::MatchText {
                pred: NlpPred::MatchKeyword(Threshold::new(0.8)),
                subtree: false,
            },
        ));
        Program::single(
            Guard::Sat(locator, NlpPred::True),
            Extractor::entity(
                Extractor::Filter(
                    Box::new(Extractor::Split(Box::new(Extractor::Content), ',')),
                    NlpPred::MatchKeyword(Threshold::new(0.6)),
                ),
                EntityKind::Organization,
            ),
        )
    }

    #[test]
    fn canonical_display() {
        let p = sample();
        let s = p.to_string();
        assert_eq!(
            s,
            "sat(descendants(descendants(root, text(kw(0.80))), leaf), true) -> \
             substr(filter(split(content, ','), kw(0.60)), entity(ORG), 1)"
        );
    }

    #[test]
    fn paper_syntax_mentions_constructs() {
        let s = sample().to_paper_syntax();
        assert!(s.contains("GetDescendants(GetRoot(W)"));
        assert!(s.contains("matchKeyword(z, K, 0.80)"));
        assert!(s.contains("Split(ExtractContent(x), COMMA)"));
        assert!(s.contains("hasEntity(z, ORG)"));
        assert!(s.starts_with("λQ,K,W."));
    }

    #[test]
    fn multi_branch_display_joined_with_semicolon() {
        let b = Branch::new(Guard::IsSingleton(Locator::Root), Extractor::Content);
        let p = Program::new(vec![b.clone(), b]);
        assert_eq!(
            p.to_string(),
            "singleton(root) -> content; singleton(root) -> content"
        );
    }

    #[test]
    fn connective_display() {
        let pred = NlpPred::And(
            Box::new(NlpPred::HasAnswer),
            Box::new(NlpPred::Not(Box::new(NlpPred::HasEntity(
                EntityKind::Person,
            )))),
        );
        assert_eq!(pred.to_string(), "and(answer, not(entity(PERSON)))");
        let f = NodeFilter::Or(Box::new(NodeFilter::IsLeaf), Box::new(NodeFilter::IsElem));
        assert_eq!(f.to_string(), "or(leaf, elem)");
    }
}
