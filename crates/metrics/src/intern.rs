//! Token interning: string tokens → dense `u32` ids, plus the id-based
//! multiset-overlap kernels the synthesizer's scoring hot path runs on.
//!
//! [`Counts::from_bags`](crate::Counts::from_bags) hashes owned token
//! strings and rebuilds a `HashMap` per call — fine for reporting, far
//! too slow for an enumerative search that scores hundreds of thousands
//! of candidates per task. The fast path interns every token once
//! ([`TokenInterner`]), represents gold bags as sorted id/count pairs
//! ([`IdBag`]), and computes multiset overlap with a reusable scratch
//! buffer ([`BagOverlap`]) — no hashing, no allocation per score.
//!
//! Tokenization parity is structural: [`TokenInterner::tokenize_ids`]
//! runs the *same* boundary scanner as [`tokenize`](crate::tokenize), so
//! the two can only differ if interning itself is wrong (covered by
//! tests and by the synthesizer's reference-kernel parity suite).

use std::collections::HashMap;

use crate::smallvec::SmallVec;
use crate::tokens::{for_each_token_range, Token};

/// Interned token-id list for one string; inline up to 8 tokens.
pub type IdVec = SmallVec<u32, 8>;

/// Interns token strings to dense `u32` ids.
///
/// # Examples
///
/// ```
/// use webqa_metrics::{tokenize, TokenInterner};
/// let mut interner = TokenInterner::new();
/// let a = interner.tokenize_ids("Jane Doe");
/// let b = interner.tokenize_ids("doe, jane!");
/// assert_eq!(a.as_slice(), &[0, 1]);
/// assert_eq!(b.as_slice(), &[1, 0]);
/// // Same ids as interning the Token values produced by `tokenize`.
/// let toks = tokenize("JANE doe");
/// let ids: Vec<u32> = toks.iter().map(|t| interner.intern(t)).collect();
/// assert_eq!(ids, vec![0, 1]);
/// ```
#[derive(Debug, Default)]
pub struct TokenInterner {
    map: HashMap<String, u32>,
    chars: Vec<char>,
    scratch: String,
}

impl TokenInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct tokens interned so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no token has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Interns one already-canonical token (as produced by
    /// [`tokenize`](crate::tokenize)).
    pub fn intern(&mut self, token: &Token) -> u32 {
        if let Some(&id) = self.map.get(token.as_str()) {
            return id;
        }
        let id = self.map.len() as u32;
        self.map.insert(token.as_str().to_string(), id);
        id
    }

    /// Tokenizes `text` with the scoring tokenizer and returns the
    /// interned id of each token, in order. Allocation-free for ASCII
    /// text whose tokens are already interned.
    pub fn tokenize_ids(&mut self, text: &str) -> IdVec {
        let mut out = IdVec::new();
        self.chars.clear();
        self.chars.extend(text.chars());
        // `for_each_token_range` borrows the scratch chars; move them out
        // to appease the borrow checker, then restore.
        let chars = std::mem::take(&mut self.chars);
        for_each_token_range(&chars, |range| {
            let raw = &chars[range];
            self.scratch.clear();
            if raw.iter().all(char::is_ascii) {
                self.scratch
                    .extend(raw.iter().map(|c| c.to_ascii_lowercase()));
            } else {
                // Non-ASCII: defer to str::to_lowercase for exact parity
                // with `tokenize` (it handles multi-char lowerings and the
                // final-sigma rule).
                let s: String = raw.iter().collect();
                self.scratch.push_str(&s.to_lowercase());
            }
            let id = match self.map.get(self.scratch.as_str()) {
                Some(&id) => id,
                None => {
                    let id = self.map.len() as u32;
                    self.map.insert(self.scratch.clone(), id);
                    id
                }
            };
            out.push(id);
        });
        self.chars = chars;
        out
    }
}

/// A token multiset as sorted `(id, count)` pairs — the gold-bag
/// representation the overlap kernel matches against.
#[derive(Debug, Clone, Default)]
pub struct IdBag {
    ids: Vec<u32>,
    counts: Vec<u32>,
    total: usize,
}

impl IdBag {
    /// Builds a bag from an unsorted id list.
    pub fn from_ids(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        let mut out = IdBag {
            ids: Vec::new(),
            counts: Vec::new(),
            total: ids.len(),
        };
        for id in ids {
            match out.ids.last() {
                Some(&last) if last == id => *out.counts.last_mut().expect("aligned") += 1,
                _ => {
                    out.ids.push(id);
                    out.counts.push(1);
                }
            }
        }
        out
    }

    /// Total number of tokens in the bag (with multiplicity).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct tokens.
    pub fn distinct(&self) -> usize {
        self.ids.len()
    }
}

/// Reusable scratch state for multiset-overlap runs against an [`IdBag`].
///
/// # Examples
///
/// ```
/// use webqa_metrics::{BagOverlap, IdBag};
/// let gold = IdBag::from_ids(vec![3, 7, 7]);
/// let mut ov = BagOverlap::new();
/// ov.begin(&gold);
/// assert!(ov.consume(&gold, 7));
/// assert!(ov.consume(&gold, 7));
/// assert!(!ov.consume(&gold, 7)); // multiplicity exhausted
/// assert!(!ov.consume(&gold, 9)); // not in the bag
/// ```
#[derive(Debug, Default)]
pub struct BagOverlap {
    remaining: Vec<u32>,
}

impl BagOverlap {
    /// Fresh scratch state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new overlap run against `bag`: all multiplicities reset.
    pub fn begin(&mut self, bag: &IdBag) {
        self.remaining.clear();
        self.remaining.extend_from_slice(&bag.counts);
    }

    /// Consumes one occurrence of `id` from the bag if any multiplicity
    /// remains; returns whether it matched. The total of `true` returns
    /// between `begin` calls is exactly the multiset-intersection size of
    /// the consumed ids with the bag.
    pub fn consume(&mut self, bag: &IdBag, id: u32) -> bool {
        match bag.ids.binary_search(&id) {
            Ok(i) if self.remaining[i] > 0 => {
                self.remaining[i] -= 1;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::Counts;
    use crate::tokens::tokenize;

    /// The id kernel must agree with `Counts::from_bags` on arbitrary text.
    fn counts_via_ids(pred_text: &str, gold_text: &str) -> Counts {
        let mut interner = TokenInterner::new();
        let gold_ids: Vec<u32> = tokenize(gold_text)
            .iter()
            .map(|t| interner.intern(t))
            .collect();
        let gold = IdBag::from_ids(gold_ids);
        let pred = interner.tokenize_ids(pred_text);
        let mut ov = BagOverlap::new();
        ov.begin(&gold);
        let matched = pred.iter().filter(|&&id| ov.consume(&gold, id)).count();
        Counts {
            matched,
            predicted: pred.len(),
            gold: gold.total(),
        }
    }

    #[test]
    fn id_kernel_matches_string_kernel() {
        for (pred, gold) in [
            ("Jane Doe", "jane doe"),
            ("a a b", "a b b"),
            ("PLDI '21 (PC), POPL '20", "pldi '21 pc"),
            ("", "x y"),
            ("x y", ""),
            ("Müller café 3.5 10:30", "müller 10:30"),
        ] {
            let fast = counts_via_ids(pred, gold);
            let slow = Counts::from_bags(&tokenize(pred), &tokenize(gold));
            assert_eq!(fast, slow, "pred={pred:?} gold={gold:?}");
        }
    }

    #[test]
    fn tokenize_ids_matches_tokenize_boundaries() {
        let mut interner = TokenInterner::new();
        for text in [
            "PLDI '21 (PC), POPL '20",
            "double-blind review at 10:30",
            "O'Brien's café — naïve Σ ΣΣ",
            "  (),;:!?  ",
            "",
        ] {
            let ids = interner.tokenize_ids(text);
            let toks = tokenize(text);
            assert_eq!(ids.len(), toks.len(), "{text:?}");
            let expect: Vec<u32> = toks.iter().map(|t| interner.intern(t)).collect();
            assert_eq!(ids.as_slice(), expect.as_slice(), "{text:?}");
        }
    }

    #[test]
    fn interner_is_stable_across_calls() {
        let mut interner = TokenInterner::new();
        let a = interner.tokenize_ids("students");
        let b = interner.tokenize_ids("STUDENTS students");
        assert_eq!(b.as_slice(), &[a[0], a[0]]);
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn idbag_groups_and_totals() {
        let bag = IdBag::from_ids(vec![5, 1, 5, 5, 2]);
        assert_eq!(bag.total(), 5);
        assert_eq!(bag.distinct(), 3);
    }

    #[test]
    fn empty_bag_consumes_nothing() {
        let bag = IdBag::from_ids(Vec::new());
        let mut ov = BagOverlap::new();
        ov.begin(&bag);
        assert!(!ov.consume(&bag, 0));
        assert_eq!(bag.total(), 0);
    }
}
