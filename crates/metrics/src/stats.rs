//! Summary statistics and significance testing.
//!
//! Appendix C.1 of the paper reports one-tailed t-tests between WebQA and
//! its input-modality ablations; Table 4 reports variance reductions over
//! 20 runs. This module provides the mean / variance / Welch t-test
//! machinery used by those benches.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n − 1 denominator). Returns 0.0 when fewer
/// than two samples are given.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Result of a Welch two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTest {
    /// The t statistic (positive when sample `a` has the larger mean).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// One-tailed p-value for the alternative `mean(a) > mean(b)`.
    pub p_one_tailed: f64,
}

/// Welch's unequal-variance t-test of `mean(a) > mean(b)` (one-tailed).
///
/// Degenerate inputs (fewer than two samples on either side, or two
/// identical constant samples) yield `t = 0, p = 0.5`.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> TTest {
    if a.len() < 2 || b.len() < 2 {
        return TTest {
            t: 0.0,
            df: 1.0,
            p_one_tailed: 0.5,
        };
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return TTest {
            t: 0.0,
            df: na + nb - 2.0,
            p_one_tailed: 0.5,
        };
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let p = 1.0 - student_t_cdf(t, df);
    TTest {
        t,
        df,
        p_one_tailed: p,
    }
}

/// CDF of Student's t distribution with `df` degrees of freedom.
///
/// Computed through the regularized incomplete beta function
/// `I_x(df/2, 1/2)` (Abramowitz & Stegun 26.7.1), which we evaluate with a
/// Lentz continued fraction — no external math crate required.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let p = 0.5 * regularized_incomplete_beta(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Regularized incomplete beta function `I_x(a, b)` for `x ∈ [0, 1]`.
fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    // Continued fraction converges fastest for x < (a+1)/(a+b+2); use the
    // symmetry I_x(a,b) = 1 − I_{1−x}(b,a) otherwise.
    let front =
        (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - regularized_incomplete_beta(b, a, 1.0 - x)
    }
}

/// Lentz's algorithm for the continued fraction of the incomplete beta.
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-30;

    let mut c = 1.0;
    let mut d = 1.0 - (a + b) * x / (a + 1.0);
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // even step
        let num = m * (b - m) * x / ((a + m2 - 1.0) * (a + m2));
        d = 1.0 + num * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + num / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // odd step
        let num = -(a + m) * (a + b + m) * x / ((a + m2) * (a + m2 + 1.0));
        d = 1.0 + num * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + num / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI.ln() - (std::f64::consts::PI * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[1.0]), 0.0);
        // variance of {1,2,3,4} = 5/3
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 5.0 / 3.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 2.0, 3.0, 4.0]) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi)
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_symmetry_and_center() {
        assert!((student_t_cdf(0.0, 5.0) - 0.5).abs() < 1e-10);
        let p = student_t_cdf(1.3, 7.0);
        let q = student_t_cdf(-1.3, 7.0);
        assert!((p + q - 1.0).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_reference_values() {
        // t=2.015, df=5 is the 95th percentile (standard t-table value).
        assert!((student_t_cdf(2.015, 5.0) - 0.95).abs() < 1e-3);
        // t=1.812, df=10 is the 95th percentile.
        assert!((student_t_cdf(1.812, 10.0) - 0.95).abs() < 1e-3);
        // Large df approaches the normal distribution: Φ(1.96) ≈ 0.975.
        assert!((student_t_cdf(1.96, 10_000.0) - 0.975).abs() < 2e-3);
    }

    #[test]
    fn welch_detects_clear_difference() {
        let a = [0.9, 0.92, 0.91, 0.88, 0.93, 0.9];
        let b = [0.5, 0.52, 0.48, 0.51, 0.49, 0.5];
        let r = welch_t_test(&a, &b);
        assert!(r.t > 10.0);
        assert!(r.p_one_tailed < 0.001);
    }

    #[test]
    fn welch_identical_samples() {
        let a = [0.5, 0.6, 0.7];
        let r = welch_t_test(&a, &a);
        assert!(r.t.abs() < 1e-12);
        assert!((r.p_one_tailed - 0.5).abs() < 1e-9);
    }

    #[test]
    fn welch_degenerate_inputs() {
        let r = welch_t_test(&[1.0], &[2.0, 3.0]);
        assert_eq!(r.p_one_tailed, 0.5);
        let r = welch_t_test(&[1.0, 1.0], &[1.0, 1.0]);
        assert_eq!(r.p_one_tailed, 0.5);
    }

    #[test]
    fn incomplete_beta_edges() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform distribution CDF)
        assert!((regularized_incomplete_beta(1.0, 1.0, 0.37) - 0.37).abs() < 1e-10);
    }
}
