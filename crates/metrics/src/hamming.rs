//! Hamming distance between program outputs.
//!
//! Section 7 of the paper: "we take our loss function to be the Hamming
//! distance between the sets of words extracted by each program",
//! `L(π; I, O) = Hamming(π(I), O)`. We realize this as the size of the
//! symmetric difference between the two token *sets* of each page, summed
//! over the pages.

use std::collections::HashSet;

use crate::tokens::{tokenize_all, Token};

/// Hamming distance between two token sets: `|A Δ B|`.
///
/// # Examples
///
/// ```
/// use webqa_metrics::{hamming_tokens, tokenize};
/// let a = tokenize("jane doe");
/// let b = tokenize("jane smith");
/// assert_eq!(hamming_tokens(&a, &b), 2); // doe, smith
/// ```
pub fn hamming_tokens(a: &[Token], b: &[Token]) -> usize {
    let sa: HashSet<&Token> = a.iter().collect();
    let sb: HashSet<&Token> = b.iter().collect();
    sa.symmetric_difference(&sb).count()
}

/// Hamming distance between two extraction outputs given as string sets.
pub fn hamming_strings<S1: AsRef<str>, S2: AsRef<str>>(a: &[S1], b: &[S2]) -> usize {
    hamming_tokens(&tokenize_all(a), &tokenize_all(b))
}

/// [`hamming_tokens`] for inputs that are already **sorted and
/// deduplicated**: a single merge pass, no hash sets. This is the kernel
/// the transductive selector runs per (ensemble member × page × candidate
/// program) — its inputs are sorted token sets by construction.
///
/// # Panics
///
/// Debug builds assert the sorted/dedup precondition.
pub fn hamming_sorted_tokens(a: &[Token], b: &[Token]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a must be sorted+dedup");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b must be sorted+dedup");
    let (mut i, mut j, mut common) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    a.len() + b.len() - 2 * common
}

/// Hamming distance between two *sequences* of per-page outputs
/// (the transductive loss `L(π; I, O) = Σₖ Hamming(π(iₖ), oₖ)`).
///
/// # Panics
///
/// Panics if the two sequences have different lengths — outputs must be
/// aligned page-by-page.
pub fn hamming_outputs(a: &[Vec<String>], b: &[Vec<String>]) -> usize {
    assert_eq!(
        a.len(),
        b.len(),
        "per-page output sequences must be aligned"
    );
    a.iter().zip(b).map(|(x, y)| hamming_strings(x, y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::tokenize;

    #[test]
    fn identical_sets_have_zero_distance() {
        assert_eq!(hamming_strings(&["Jane Doe"], &["jane doe"]), 0);
    }

    #[test]
    fn disjoint_sets_sum_sizes() {
        assert_eq!(hamming_strings(&["a b"], &["c d"]), 4);
    }

    #[test]
    fn symmetric() {
        let a = tokenize("x y z");
        let b = tokenize("y z w q");
        assert_eq!(hamming_tokens(&a, &b), hamming_tokens(&b, &a));
        assert_eq!(hamming_tokens(&a, &b), 3);
    }

    #[test]
    fn set_semantics_ignore_duplicates() {
        let a = tokenize("a a a");
        let b = tokenize("a");
        assert_eq!(hamming_tokens(&a, &b), 0);
    }

    #[test]
    fn outputs_sum_per_page() {
        let a = vec![vec!["jane".to_string()], vec!["x".to_string()]];
        let b = vec![vec!["jane".to_string()], vec!["y".to_string()]];
        assert_eq!(hamming_outputs(&a, &b), 2);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_outputs_panic() {
        let a = vec![vec![]];
        let b: Vec<Vec<String>> = vec![];
        hamming_outputs(&a, &b);
    }

    #[test]
    fn empty_vs_empty() {
        assert_eq!(hamming_strings::<&str, &str>(&[], &[]), 0);
    }

    #[test]
    fn sorted_kernel_matches_hash_kernel() {
        let cases = [
            ("", ""),
            ("jane doe", "jane smith"),
            ("a b c d", "c d e"),
            ("x", "x"),
            ("q w e", ""),
        ];
        for (sa, sb) in cases {
            let sort_dedup = |s: &str| {
                let mut t = tokenize(s);
                t.sort();
                t.dedup();
                t
            };
            let a = sort_dedup(sa);
            let b = sort_dedup(sb);
            assert_eq!(
                hamming_sorted_tokens(&a, &b),
                hamming_tokens(&a, &b),
                "{sa:?} vs {sb:?}"
            );
        }
    }
}
