//! Token-level precision / recall / F₁.
//!
//! The synthesis objective of the paper is the F₁ score between the strings
//! a program extracts and the user-provided labels, computed over *tokens*
//! (Section 5). Scores are accumulated as token-multiset overlap counts so
//! that they can be micro-averaged across webpages, matching the
//! `Recall(ν, E)` definition used by the `UB` pruning bound (Eq. 3).

use std::collections::HashMap;

use crate::tokens::{tokenize_all, Token};

/// Raw overlap counts between a predicted token bag and a gold token bag.
///
/// `Counts` is the additive representation of an F₁ computation: counts for
/// several examples can be summed (`+`), and the micro-averaged precision /
/// recall / F₁ are derived at the end. This mirrors how the paper evaluates
/// a program on a *set* of labeled webpages.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Counts {
    /// Number of predicted tokens that matched a gold token (multiset ∩).
    pub matched: usize,
    /// Total number of predicted tokens.
    pub predicted: usize,
    /// Total number of gold tokens.
    pub gold: usize,
}

impl Counts {
    /// Creates counts from a predicted and a gold token bag.
    ///
    /// The intersection is a *multiset* intersection: a token occurring
    /// twice in the prediction but once in the gold contributes one match.
    pub fn from_bags(predicted: &[Token], gold: &[Token]) -> Self {
        let mut gold_counts: HashMap<&Token, usize> = HashMap::new();
        for t in gold {
            *gold_counts.entry(t).or_insert(0) += 1;
        }
        let mut matched = 0;
        for t in predicted {
            if let Some(c) = gold_counts.get_mut(t) {
                if *c > 0 {
                    *c -= 1;
                    matched += 1;
                }
            }
        }
        Counts {
            matched,
            predicted: predicted.len(),
            gold: gold.len(),
        }
    }

    /// Creates counts from predicted and gold *string sets* by tokenizing.
    pub fn from_strings<S1: AsRef<str>, S2: AsRef<str>>(predicted: &[S1], gold: &[S2]) -> Self {
        Self::from_bags(&tokenize_all(predicted), &tokenize_all(gold))
    }

    /// Precision = matched / predicted; 1.0 when nothing was predicted and
    /// nothing was expected, 0.0 when predictions exist but none match.
    ///
    /// The empty-prediction convention matters for guard synthesis: a
    /// program that extracts nothing on a page whose label is empty is
    /// *correct* there, not undefined.
    pub fn precision(&self) -> f64 {
        if self.predicted == 0 {
            if self.gold == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.matched as f64 / self.predicted as f64
        }
    }

    /// Recall = matched / gold; 1.0 when the gold set is empty.
    pub fn recall(&self) -> f64 {
        if self.gold == 0 {
            if self.predicted == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.matched as f64 / self.gold as f64
        }
    }

    /// F₁ = 2·P·R / (P + R); 0.0 when both P and R are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// The F₁ upper bound of Eq. 3: assume perfect precision and the
    /// current recall. `UB = 2R / (1 + R)`.
    ///
    /// Sound for pruning because every DSL production can only *shrink*
    /// the extracted token bag (recall monotonicity, Theorem A.3).
    pub fn upper_bound(&self) -> f64 {
        let r = self.recall();
        2.0 * r / (1.0 + r)
    }
}

impl std::ops::Add for Counts {
    type Output = Counts;
    fn add(self, rhs: Counts) -> Counts {
        Counts {
            matched: self.matched + rhs.matched,
            predicted: self.predicted + rhs.predicted,
            gold: self.gold + rhs.gold,
        }
    }
}

impl std::ops::AddAssign for Counts {
    fn add_assign(&mut self, rhs: Counts) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for Counts {
    fn sum<I: Iterator<Item = Counts>>(iter: I) -> Counts {
        iter.fold(Counts::default(), |a, b| a + b)
    }
}

/// A finished precision / recall / F₁ triple.
///
/// This is the row format of the paper's Table 2 and Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Score {
    /// Precision in `[0, 1]`.
    pub precision: f64,
    /// Recall in `[0, 1]`.
    pub recall: f64,
    /// F₁ in `[0, 1]`.
    pub f1: f64,
}

impl Score {
    /// Derives a [`Score`] from accumulated [`Counts`].
    pub fn from_counts(c: Counts) -> Self {
        Score {
            precision: c.precision(),
            recall: c.recall(),
            f1: c.f1(),
        }
    }

    /// Arithmetic mean of several scores (macro average, used when the
    /// paper averages *per-task* scores into a domain row).
    pub fn mean<'a, I: IntoIterator<Item = &'a Score>>(scores: I) -> Score {
        let mut n = 0usize;
        let (mut p, mut r, mut f) = (0.0, 0.0, 0.0);
        for s in scores {
            p += s.precision;
            r += s.recall;
            f += s.f1;
            n += 1;
        }
        if n == 0 {
            return Score::default();
        }
        let n = n as f64;
        Score {
            precision: p / n,
            recall: r / n,
            f1: f / n,
        }
    }
}

impl std::fmt::Display for Score {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.2} R={:.2} F1={:.2}",
            self.precision, self.recall, self.f1
        )
    }
}

/// Scores one example: predicted strings vs gold strings.
///
/// # Examples
///
/// ```
/// use webqa_metrics::score_strings;
/// let s = score_strings(&["Jane Doe"], &["Jane Doe", "Bob Smith"]);
/// assert!((s.recall - 0.5).abs() < 1e-9);
/// assert!((s.precision - 1.0).abs() < 1e-9);
/// ```
pub fn score_strings<S1: AsRef<str>, S2: AsRef<str>>(predicted: &[S1], gold: &[S2]) -> Score {
    Score::from_counts(Counts::from_strings(predicted, gold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::tokenize;

    #[test]
    fn perfect_match() {
        let c = Counts::from_strings(&["Jane Doe"], &["jane doe"]);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    fn disjoint_prediction() {
        let c = Counts::from_strings(&["alpha"], &["beta"]);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
    }

    #[test]
    fn empty_prediction_empty_gold_is_perfect() {
        let c = Counts::from_strings::<&str, &str>(&[], &[]);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn empty_prediction_nonempty_gold() {
        let c = Counts::from_strings::<&str, &str>(&[], &["x"]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn nonempty_prediction_empty_gold() {
        let c = Counts::from_strings::<&str, &str>(&["x"], &[]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
    }

    #[test]
    fn multiset_intersection_counts_duplicates_once_each() {
        let pred = tokenize("a a b");
        let gold = tokenize("a b b");
        let c = Counts::from_bags(&pred, &gold);
        // one "a" matches, one "b" matches
        assert_eq!(c.matched, 2);
        assert_eq!(c.predicted, 3);
        assert_eq!(c.gold, 3);
    }

    #[test]
    fn partial_overlap_f1() {
        // predicted {jane, doe}, gold {jane, doe, bob, smith}
        let c = Counts::from_strings(&["Jane Doe"], &["Jane Doe", "Bob Smith"]);
        assert!((c.precision() - 1.0).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn counts_are_additive() {
        let a = Counts::from_strings(&["x"], &["x"]);
        let b = Counts::from_strings(&["y"], &["z"]);
        let sum = a + b;
        assert_eq!(sum.matched, 1);
        assert_eq!(sum.predicted, 2);
        assert_eq!(sum.gold, 2);
        assert!((sum.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn upper_bound_formula() {
        let c = Counts {
            matched: 1,
            predicted: 10,
            gold: 2,
        };
        // recall 0.5, UB = 2*0.5/1.5
        assert!((c.upper_bound() - 2.0 / 3.0).abs() < 1e-12);
        // UB must dominate actual F1
        assert!(c.upper_bound() >= c.f1());
    }

    #[test]
    fn score_mean() {
        let s1 = Score {
            precision: 1.0,
            recall: 0.0,
            f1: 0.0,
        };
        let s2 = Score {
            precision: 0.0,
            recall: 1.0,
            f1: 1.0,
        };
        let m = Score::mean([&s1, &s2]);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert!((m.f1 - 0.5).abs() < 1e-12);
        assert_eq!(Score::mean([]), Score::default());
    }

    #[test]
    fn counts_sum_iterator() {
        let total: Counts = vec![
            Counts::from_strings(&["a"], &["a"]),
            Counts::from_strings(&["b"], &["b"]),
        ]
        .into_iter()
        .sum();
        assert_eq!(total.matched, 2);
    }

    #[test]
    fn display_formats() {
        let s = Score {
            precision: 0.5,
            recall: 0.25,
            f1: 1.0 / 3.0,
        };
        assert_eq!(s.to_string(), "P=0.50 R=0.25 F1=0.33");
    }
}
