//! # webqa-metrics
//!
//! Scoring and statistics substrate for the WebQA reproduction.
//!
//! The paper frames synthesis as *optimal* synthesis with respect to
//! token-level F₁ (Section 5), selects programs transductively with a
//! Hamming-distance loss (Sections 6–7), and reports variance reductions and
//! t-tests in its evaluation (Section 8, Appendix C). This crate provides
//! all of those primitives:
//!
//! * [`tokenize`] / [`Token`] — the scoring tokenizer;
//! * [`Counts`] / [`Score`] / [`score_strings`] — additive token-overlap
//!   counts and derived precision / recall / F₁, including the pruning
//!   upper bound `UB = 2R/(1+R)` (Eq. 3);
//! * [`hamming_strings`] / [`hamming_outputs`] — the transductive loss;
//! * [`TokenInterner`] / [`IdBag`] / [`BagOverlap`] — interned token ids
//!   and the allocation-free multiset-overlap kernels the synthesizer's
//!   hot path scores with (plus [`SmallVec`], their inline-capacity bag
//!   storage);
//! * [`stats`] — mean / variance / Welch t-test.
//!
//! ```
//! use webqa_metrics::{score_strings, hamming_strings};
//! let s = score_strings(&["PLDI '21 (PC)"], &["PLDI '21", "POPL '20"]);
//! assert!(s.precision > 0.5 && s.recall < 1.0);
//! assert_eq!(hamming_strings(&["jane"], &["jane"]), 0);
//! ```

#![warn(missing_docs)]

mod hamming;
mod intern;
mod score;
mod smallvec;
pub mod stats;
mod tokens;

pub use hamming::{hamming_outputs, hamming_sorted_tokens, hamming_strings, hamming_tokens};
pub use intern::{BagOverlap, IdBag, IdVec, TokenInterner};
pub use score::{score_strings, Counts, Score};
pub use smallvec::SmallVec;
pub use tokens::{tokenize, tokenize_all, Token};
