//! A minimal inline-capacity vector for token-id bags.
//!
//! The synthesis hot path produces millions of tiny id lists (most
//! extracted strings are a handful of tokens). `SmallVec<T, N>` keeps up
//! to `N` elements inline — no heap allocation — and spills to a `Vec`
//! past that. It implements just the surface the scoring kernels need;
//! it is *not* a general-purpose replacement for the `smallvec` crate
//! (this build environment has no crates.io access).

/// A vector storing up to `N` elements inline before spilling to the heap.
#[derive(Debug, Clone)]
pub enum SmallVec<T: Copy + Default, const N: usize> {
    /// Inline storage: `len` live elements in `buf`.
    Inline {
        /// Fixed inline buffer; only `buf[..len]` is meaningful.
        buf: [T; N],
        /// Number of live elements.
        len: usize,
    },
    /// Spilled storage.
    Heap(Vec<T>),
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// An empty vector (inline, no allocation).
    pub fn new() -> Self {
        SmallVec::Inline {
            buf: [T::default(); N],
            len: 0,
        }
    }

    /// Appends an element, spilling to the heap at capacity.
    pub fn push(&mut self, value: T) {
        match self {
            SmallVec::Inline { buf, len } => {
                if *len < N {
                    buf[*len] = value;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    v.extend_from_slice(&buf[..*len]);
                    v.push(value);
                    *self = SmallVec::Heap(v);
                }
            }
            SmallVec::Heap(v) => v.push(value),
        }
    }

    /// The live elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            SmallVec::Inline { buf, len } => &buf[..*len],
            SmallVec::Heap(v) => v,
        }
    }

    /// The live elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            SmallVec::Inline { buf, len } => &mut buf[..*len],
            SmallVec::Heap(v) => v,
        }
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        match self {
            SmallVec::Inline { len, .. } => *len,
            SmallVec::Heap(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all elements, keeping the current storage.
    pub fn clear(&mut self) {
        match self {
            SmallVec::Inline { len, .. } => *len = 0,
            SmallVec::Heap(v) => v.clear(),
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(matches!(v, SmallVec::Inline { .. }));
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn spills_preserving_order() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(matches!(v, SmallVec::Heap(_)));
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn clear_and_reuse() {
        let mut v: SmallVec<u32, 2> = (0..4).collect();
        v.clear();
        assert!(v.is_empty());
        v.push(9);
        assert_eq!(v.as_slice(), &[9]);
    }

    #[test]
    fn deref_as_slice() {
        let v: SmallVec<u32, 8> = (0..3).collect();
        assert_eq!(v.iter().sum::<u32>(), 3);
        assert_eq!(v[1], 1);
    }
}
