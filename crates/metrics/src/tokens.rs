//! Scoring tokenization.
//!
//! The paper evaluates extraction quality with *token-level* precision,
//! recall, and F₁ (Section 5, footnote 1). This module provides the
//! tokenizer used for scoring: it lowercases, strips punctuation at token
//! boundaries, and splits on whitespace, so that `"PLDI '21 (PC),"` and
//! `"pldi '21 (pc)"` score identically.

/// A scoring token: lowercased, punctuation-trimmed word.
///
/// Newtype so token streams cannot be confused with arbitrary strings
/// elsewhere in the workspace.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(String);

impl Token {
    /// View the token as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Token {
    fn from(s: &str) -> Self {
        Token(s.to_lowercase())
    }
}

/// Splits `text` into scoring tokens.
///
/// Tokens are maximal runs of alphanumeric characters plus a small set of
/// word-internal characters (`'`, `-`, `.` between digits). Everything is
/// lowercased. Empty input yields an empty vector.
///
/// # Examples
///
/// ```
/// use webqa_metrics::tokenize;
/// let toks = tokenize("PLDI '21 (PC), POPL '20");
/// let strs: Vec<&str> = toks.iter().map(|t| t.as_str()).collect();
/// assert_eq!(strs, ["pldi", "'21", "pc", "popl", "'20"]);
/// ```
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    for_each_token_range(&chars, |range| {
        let tok: String = chars[range].iter().collect::<String>().to_lowercase();
        tokens.push(Token(tok));
    });
    tokens
}

/// Scans `chars` and calls `f` with the char range of every raw (not yet
/// lowercased) token. This is the single tokenization scanner: both
/// [`tokenize`] and the id-interning fast path
/// ([`crate::TokenInterner::tokenize_ids`]) are built on it, so they can
/// never disagree about token boundaries.
pub(crate) fn for_each_token_range(chars: &[char], mut f: impl FnMut(std::ops::Range<usize>)) {
    let mut i = 0;
    while i < chars.len() {
        if is_token_char(chars[i])
            || (chars[i] == '\'' && i + 1 < chars.len() && is_token_char(chars[i + 1]))
        {
            let start = i;
            // A leading apostrophe is kept so year abbreviations like '21
            // survive tokenization (they are load-bearing in several tasks).
            if chars[i] == '\'' {
                i += 1;
            }
            while i < chars.len() && (is_token_char(chars[i]) || is_word_internal(chars, i)) {
                i += 1;
            }
            f(start..i);
        } else {
            i += 1;
        }
    }
}

/// Splits a *set of extracted strings* into one combined token bag.
///
/// The paper's recall definition (Section 5) is over tokens of the combined
/// extraction output, so the per-string boundaries do not matter for
/// scoring.
pub fn tokenize_all<S: AsRef<str>>(strings: &[S]) -> Vec<Token> {
    let mut out = Vec::new();
    for s in strings {
        out.extend(tokenize(s.as_ref()));
    }
    out
}

fn is_token_char(c: char) -> bool {
    c.is_alphanumeric()
}

fn is_word_internal(chars: &[char], i: usize) -> bool {
    let c = chars[i];
    if c != '\'' && c != '-' && c != '.' && c != ':' {
        return false;
    }
    // Internal only: must be surrounded by token characters, as in
    // "double-blind", "o'brien", "3.5", "10:30".
    i > 0 && is_token_char(chars[i - 1]) && i + 1 < chars.len() && is_token_char(chars[i + 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokenize(s).into_iter().map(|t| t.0).collect()
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
        assert!(tokenize("(),;:!?").is_empty());
    }

    #[test]
    fn lowercases() {
        assert_eq!(toks("Jane DOE"), ["jane", "doe"]);
    }

    #[test]
    fn keeps_year_abbreviations() {
        assert_eq!(toks("PLDI '21"), ["pldi", "'21"]);
    }

    #[test]
    fn keeps_hyphenated_words() {
        assert_eq!(toks("double-blind review"), ["double-blind", "review"]);
    }

    #[test]
    fn keeps_decimal_numbers_and_times() {
        assert_eq!(
            toks("3.5 GPA at 10:30 AM"),
            ["3.5", "gpa", "at", "10:30", "am"]
        );
    }

    #[test]
    fn strips_surrounding_punctuation() {
        assert_eq!(toks("(PC), [SRC]."), ["pc", "src"]);
    }

    #[test]
    fn apostrophe_inside_name() {
        assert_eq!(toks("O'Brien"), ["o'brien"]);
    }

    #[test]
    fn trailing_punctuation_not_kept() {
        assert_eq!(toks("students:"), ["students"]);
        assert_eq!(toks("end."), ["end"]);
    }

    #[test]
    fn tokenize_all_concatenates() {
        let combined = tokenize_all(&["Jane Doe", "Robert Smith"]);
        assert_eq!(combined.len(), 4);
    }

    #[test]
    fn token_display_roundtrip() {
        let t = Token::from("PLDI");
        assert_eq!(t.to_string(), "pldi");
        assert_eq!(format!("{t}"), t.as_str());
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(toks("Müller café"), ["müller", "café"]);
    }
}
