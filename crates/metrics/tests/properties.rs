//! Property-based tests for the metrics substrate.
//!
//! The synthesis algorithm's correctness (Theorem 5.1) rests on properties
//! of these scoring primitives — most importantly that `UB` dominates F₁ and
//! that scores stay in `[0, 1]`.

use proptest::prelude::*;
use webqa_metrics::{
    hamming_strings, hamming_tokens, score_strings, stats, tokenize, tokenize_all, Counts,
};

fn words() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z]{1,6}", 0..8)
}

proptest! {
    #[test]
    fn scores_are_bounded(pred in words(), gold in words()) {
        let s = score_strings(&pred, &gold);
        prop_assert!((0.0..=1.0).contains(&s.precision));
        prop_assert!((0.0..=1.0).contains(&s.recall));
        prop_assert!((0.0..=1.0).contains(&s.f1));
    }

    #[test]
    fn f1_between_min_and_max_of_p_r(pred in words(), gold in words()) {
        let s = score_strings(&pred, &gold);
        let lo = s.precision.min(s.recall);
        let hi = s.precision.max(s.recall);
        prop_assert!(s.f1 >= lo - 1e-12 && s.f1 <= hi + 1e-12);
    }

    #[test]
    fn upper_bound_dominates_f1(pred in words(), gold in words()) {
        let c = Counts::from_strings(&pred, &gold);
        prop_assert!(c.upper_bound() >= c.f1() - 1e-12);
    }

    #[test]
    fn identical_inputs_score_one(xs in words()) {
        let s = score_strings(&xs, &xs);
        prop_assert!((s.f1 - 1.0).abs() < 1e-12);
    }

    /// Recall monotonicity: removing predicted strings never increases
    /// recall. This is the property the DSL's UB pruning relies on
    /// (Theorem A.3): every production shrinks the output token bag.
    #[test]
    fn recall_monotone_under_output_shrink(pred in words(), gold in words(), k in 0usize..8) {
        let k = k.min(pred.len());
        let smaller = &pred[..k];
        let full = Counts::from_strings(&pred, &gold);
        let part = Counts::from_strings(smaller, &gold);
        if !gold.is_empty() {
            prop_assert!(part.recall() <= full.recall() + 1e-12);
        }
    }

    #[test]
    fn hamming_is_symmetric(a in words(), b in words()) {
        prop_assert_eq!(hamming_strings(&a, &b), hamming_strings(&b, &a));
    }

    #[test]
    fn hamming_identity(a in words()) {
        prop_assert_eq!(hamming_strings(&a, &a), 0);
    }

    #[test]
    fn hamming_triangle_inequality(a in words(), b in words(), c in words()) {
        let (ta, tb, tc) = (tokenize_all(&a), tokenize_all(&b), tokenize_all(&c));
        prop_assert!(
            hamming_tokens(&ta, &tc) <= hamming_tokens(&ta, &tb) + hamming_tokens(&tb, &tc)
        );
    }

    #[test]
    fn tokenizer_is_idempotent_on_its_output(s in "[ -~]{0,60}") {
        let once: Vec<String> = tokenize(&s).iter().map(|t| t.as_str().to_string()).collect();
        let again: Vec<String> =
            tokenize(&once.join(" ")).iter().map(|t| t.as_str().to_string()).collect();
        prop_assert_eq!(once, again);
    }

    #[test]
    fn variance_nonnegative(xs in proptest::collection::vec(-1e3f64..1e3, 0..20)) {
        prop_assert!(stats::variance(&xs) >= 0.0);
    }

    #[test]
    fn t_cdf_monotone(t1 in -5.0f64..5.0, dt in 0.0f64..5.0, df in 1.0f64..50.0) {
        let lo = stats::student_t_cdf(t1, df);
        let hi = stats::student_t_cdf(t1 + dt, df);
        prop_assert!(hi >= lo - 1e-9);
    }
}
