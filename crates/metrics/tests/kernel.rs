//! Cross-module tests of the scoring kernel — the quantity every synthesis
//! decision optimizes (token-level F₁, Section 5) and the transductive loss
//! (Hamming distance, Section 7). The unit tests inside each module cover
//! local behavior; these check the invariants that tie the kernel together.

use webqa_metrics::{
    hamming_strings, hamming_tokens, score_strings, tokenize, tokenize_all, Counts, Score,
};

// ---------------------------------------------------------------------
// Counts / Score: the F₁ computation.

#[test]
fn perfect_extraction_scores_one() {
    let s = score_strings(&["Jane Doe", "Wei Chen"], &["jane doe", "wei chen"]);
    assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
}

#[test]
fn case_and_punctuation_do_not_affect_the_score() {
    let a = score_strings(&["PLDI '21 (PC),"], &["pldi '21 pc"]);
    assert_eq!(a.f1, 1.0, "scoring must be tokenization-invariant: {a:?}");
}

#[test]
fn string_grouping_does_not_affect_the_score() {
    // Section 5: recall is over the *combined* token bag, so how the
    // extraction splits strings is irrelevant.
    let one = score_strings(&["jane doe wei chen"], &["jane doe", "wei chen"]);
    let two = score_strings(&["jane doe", "wei chen"], &["jane doe wei chen"]);
    assert_eq!(one.f1, 1.0);
    assert_eq!(two.f1, 1.0);
}

#[test]
fn multiset_intersection_counts_duplicates_once_per_occurrence() {
    let c = Counts::from_strings(&["jane jane"], &["jane"]);
    assert_eq!((c.matched, c.predicted, c.gold), (1, 2, 1));
    assert_eq!(c.precision(), 0.5);
    assert_eq!(c.recall(), 1.0);
}

#[test]
fn empty_conventions_match_the_guard_semantics() {
    // Nothing predicted, nothing expected: correct (P = R = 1).
    let both_empty = Counts::from_strings::<&str, &str>(&[], &[]);
    assert_eq!(both_empty.f1(), 1.0);
    // Predicted something on an empty-label page: wrong, not undefined.
    let spurious = Counts::from_strings::<_, &str>(&["x"], &[]);
    assert_eq!(spurious.f1(), 0.0);
    // Missed a non-empty label entirely.
    let missed = Counts::from_strings::<&str, _>(&[], &["x"]);
    assert_eq!(missed.f1(), 0.0);
}

#[test]
fn counts_are_additive_for_micro_averaging() {
    let a = Counts::from_strings(&["jane doe"], &["jane doe"]);
    let b = Counts::from_strings(&["bob"], &["alice"]);
    let sum = a + b;
    assert_eq!(sum.matched, a.matched + b.matched);
    assert_eq!(sum.predicted, a.predicted + b.predicted);
    assert_eq!(sum.gold, a.gold + b.gold);
    let mut acc = Counts::default();
    acc += a;
    acc += b;
    assert_eq!(acc, sum);
}

#[test]
fn upper_bound_dominates_f1_and_is_tight_at_perfect_precision() {
    // UB = 2R/(1+R) assumes perfect precision; any actual F1 with the same
    // or smaller recall must sit below it (this is what makes Eq. 3 a
    // sound pruning bound given recall monotonicity).
    let cases = [
        Counts {
            matched: 3,
            predicted: 10,
            gold: 4,
        },
        Counts {
            matched: 2,
            predicted: 2,
            gold: 5,
        },
        Counts {
            matched: 0,
            predicted: 7,
            gold: 3,
        },
        Counts {
            matched: 4,
            predicted: 4,
            gold: 4,
        },
    ];
    for c in cases {
        assert!(
            c.f1() <= c.upper_bound() + 1e-12,
            "UB violated for {c:?}: f1 {} > ub {}",
            c.f1(),
            c.upper_bound()
        );
    }
    // Tight when precision is perfect.
    let perfect_p = Counts {
        matched: 2,
        predicted: 2,
        gold: 5,
    };
    assert!((perfect_p.f1() - perfect_p.upper_bound()).abs() < 1e-12);
}

#[test]
fn score_mean_averages_componentwise() {
    let s1 = Score {
        precision: 1.0,
        recall: 0.5,
        f1: 2.0 / 3.0,
    };
    let s2 = Score {
        precision: 0.0,
        recall: 0.5,
        f1: 0.0,
    };
    let m = Score::mean([&s1, &s2]);
    assert!((m.precision - 0.5).abs() < 1e-12);
    assert!((m.recall - 0.5).abs() < 1e-12);
    assert!((m.f1 - 1.0 / 3.0).abs() < 1e-12);
}

// ---------------------------------------------------------------------
// Hamming: the transductive loss.

#[test]
fn hamming_is_a_metric_on_token_sets() {
    let a = tokenize("jane doe phd");
    let b = tokenize("jane smith phd");
    let c = tokenize("robert smith");
    // Identity, symmetry, triangle inequality.
    assert_eq!(hamming_tokens(&a, &a), 0);
    assert_eq!(hamming_tokens(&a, &b), hamming_tokens(&b, &a));
    assert!(hamming_tokens(&a, &c) <= hamming_tokens(&a, &b) + hamming_tokens(&b, &c));
}

#[test]
fn hamming_agrees_with_symmetric_difference_cardinality() {
    // {jane, doe} Δ {jane, smith} = {doe, smith}.
    assert_eq!(hamming_strings(&["Jane Doe"], &["jane smith"]), 2);
    // Duplicates collapse: Hamming is over token *sets*, unlike F1's bags.
    assert_eq!(hamming_strings(&["a a b"], &["b a"]), 0);
}

#[test]
fn zero_hamming_iff_equal_token_sets_even_when_f1_counts_differ() {
    // Same token set, different multiplicities: Hamming 0 but F1 < 1 —
    // the two metrics measure different things by design.
    let pred = ["jane jane"];
    let gold = ["jane"];
    assert_eq!(hamming_strings(&pred, &gold), 0);
    assert!(score_strings(&pred, &gold).f1 < 1.0);
}

// ---------------------------------------------------------------------
// Tokenizer properties the other two depend on.

#[test]
fn tokenization_is_idempotent_under_rejoining() {
    for text in [
        "PLDI '21 (PC), POPL '20",
        "O'Brien double-blind 3.5 GPA",
        "10:30 AM — Rm. 5",
    ] {
        let once: Vec<String> = tokenize(text)
            .iter()
            .map(|t| t.as_str().to_string())
            .collect();
        let rejoined = once.join(" ");
        let twice: Vec<String> = tokenize(&rejoined)
            .iter()
            .map(|t| t.as_str().to_string())
            .collect();
        assert_eq!(once, twice, "re-tokenizing {rejoined:?} changed the bag");
    }
}

#[test]
fn tokenize_all_is_concatenation_of_tokenize() {
    let parts = ["Jane Doe", "", "PLDI '21"];
    let combined = tokenize_all(&parts);
    let manual: Vec<_> = parts.iter().flat_map(|s| tokenize(s)).collect();
    assert_eq!(combined, manual);
}
