//! Tree construction: tokens → [`Document`].
//!
//! A lenient tree builder modeled on the forgiving parts of the WHATWG
//! algorithm that matter for semi-structured pages:
//!
//! * void elements (`br`, `img`, …) never take children;
//! * `<li>`, `<p>`, `<tr>`, `<td>`, `<th>`, `<option>`, `<dt>`, `<dd>`,
//!   headings, and the table section tags close an open element of the
//!   same kind implicitly; block-level start tags close an open `<p>`;
//! * stray end tags are ignored; unclosed elements are closed at EOF;
//! * `<script>`/`<style>` contents are dropped (the paper's parser also
//!   removes scripts and images before building its tree); `<textarea>`
//!   contents are kept — they are visible text;
//! * every recovery the builder performs is counted in
//!   [`ParseDiagnostics`], so ingestion tooling can report *how* messy a
//!   page was even though the lenient parse cannot fail.

use crate::dom::{Document, NodeData, NodeId};
use crate::error::{HtmlError, ParseDiagnostics, MAX_OPEN_DEPTH};
use crate::tokenizer::{tokenize_stream, HtmlToken};

/// Parses an HTML string into a [`Document`].
///
/// Never fails: malformed input produces a best-effort tree, like a
/// browser. Comments, doctype, and script/style contents are discarded.
///
/// # Examples
///
/// ```
/// use webqa_html::parse_html;
/// let doc = parse_html("<h1>Title</h1><p>Body</p>");
/// assert_eq!(doc.text_content(doc.root()), "Title Body");
/// ```
pub fn parse_html(input: &str) -> Document {
    parse_html_report(input).0
}

/// Parses like [`parse_html`], additionally reporting how much recovery
/// the page needed (see [`ParseDiagnostics`]).
///
/// # Examples
///
/// ```
/// use webqa_html::parse_html_report;
/// let (_, diag) = parse_html_report("<p>clean</p>");
/// assert!(diag.is_clean());
/// let (_, diag) = parse_html_report("<p>50&bogus;mg</div></p>");
/// assert_eq!(diag.unknown_entities, 1);
/// assert_eq!(diag.stray_end_tags, 1);
/// ```
pub fn parse_html_report(input: &str) -> (Document, ParseDiagnostics) {
    let stream = tokenize_stream(input);
    let mut diag = ParseDiagnostics {
        unknown_entities: stream.unknown_entities,
        ..ParseDiagnostics::default()
    };
    let doc = build_document(stream.tokens, &stream.offsets, None, &mut diag)
        .expect("lenient build has no depth limit");
    (doc, diag)
}

/// Parses an HTML string into a [`Document`], reporting the damage the
/// lenient path would silently recover from.
///
/// The produced tree is identical to [`parse_html`]'s on inputs that pass
/// the checks; inputs that fail would have parsed into something
/// structurally untrustworthy (see [`HtmlError`]).
///
/// # Errors
///
/// * [`HtmlError::MalformedEntity`] — an `&…;` reference that does not
///   decode, in content that survives into the tree (text runs, attribute
///   values, `<textarea>` raw text; references inside comments and
///   `<script>`/`<style>` raw text are never decoded, so they are not
///   diagnosed);
/// * [`HtmlError::TooDeep`] — open-element nesting beyond
///   [`MAX_OPEN_DEPTH`], i.e. unclosed tags accumulating without bound;
///   carries the byte offset of the offending open tag.
///
/// # Examples
///
/// ```
/// use webqa_html::{try_parse_html, HtmlError};
/// assert!(try_parse_html("<h1>Title</h1>").is_ok());
/// assert!(matches!(
///     try_parse_html("<p>Smith &bogus; Jones</p>"),
///     Err(HtmlError::MalformedEntity { .. })
/// ));
/// // Script content is dropped by the builder, so damage there is fine.
/// assert!(try_parse_html("<script>u = 'a=1&id2;';</script><p>ok</p>").is_ok());
/// ```
pub fn try_parse_html(input: &str) -> Result<Document, HtmlError> {
    let stream = tokenize_stream(input);
    if let Some((entity, offset)) = stream.malformed {
        return Err(HtmlError::MalformedEntity { entity, offset });
    }
    let mut diag = ParseDiagnostics::default();
    build_document(
        stream.tokens,
        &stream.offsets,
        Some(MAX_OPEN_DEPTH),
        &mut diag,
    )
}

/// Tokens → [`Document`]: the shared lenient tree builder. `offsets` is
/// the per-token source position table from the tokenizer. With a
/// `limit`, rejects open-element nesting deeper than `limit`
/// ([`HtmlError::TooDeep`]); with `None` it cannot fail. Recovery events
/// are accumulated into `diag`.
fn build_document(
    tokens: Vec<HtmlToken>,
    offsets: &[usize],
    limit: Option<usize>,
    diag: &mut ParseDiagnostics,
) -> Result<Document, HtmlError> {
    let mut doc = Document::new();
    let mut stack: Vec<(String, NodeId)> = vec![(String::from("#document"), doc.root())];
    let mut in_dropped_raw_text = false;

    for (idx, token) in tokens.into_iter().enumerate() {
        match token {
            HtmlToken::Doctype(_) | HtmlToken::Comment(_) => {}
            HtmlToken::Text(text) => {
                if in_dropped_raw_text {
                    continue;
                }
                if text.trim().is_empty() {
                    continue;
                }
                let parent = stack.last().expect("stack never empty").1;
                // Coalesce adjacent text (split only by dropped content
                // such as comments) so parsing is a serialization
                // fixpoint: re-parsing emitted HTML cannot tell where the
                // dropped content was.
                if let Some(&last) = doc.node(parent).children.last() {
                    if let NodeData::Text(prev) = &doc.node(last).data {
                        let merged = format!("{prev}{text}");
                        doc.replace_text(last, merged);
                        continue;
                    }
                }
                doc.append(parent, NodeData::Text(text));
            }
            HtmlToken::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                if name == "script" || name == "style" {
                    in_dropped_raw_text = !self_closing;
                    continue;
                }
                // Implicit closes: e.g. <li> inside an open <li>.
                while let Some(open) = stack.last().map(|(t, _)| t.clone()) {
                    if implicitly_closes(&name, &open) {
                        stack.pop();
                        diag.implicit_closes += 1;
                    } else {
                        break;
                    }
                }
                let parent = stack.last().expect("stack never empty").1;
                let id = doc.append(
                    parent,
                    NodeData::Element {
                        tag: name.clone(),
                        attrs,
                    },
                );
                if !self_closing && !is_void(&name) {
                    stack.push((name, id));
                    // Depth excludes the "#document" sentinel.
                    if let Some(limit) = limit {
                        if stack.len() - 1 > limit {
                            return Err(HtmlError::TooDeep {
                                depth: stack.len() - 1,
                                limit,
                                offset: offsets.get(idx).copied().unwrap_or(0),
                            });
                        }
                    }
                }
            }
            HtmlToken::EndTag { name } => {
                if name == "script" || name == "style" {
                    in_dropped_raw_text = false;
                    continue;
                }
                // Find the matching open element, if any; close everything
                // above it. A stray end tag (no match) is ignored.
                match stack.iter().rposition(|(t, _)| *t == name) {
                    Some(pos) if pos > 0 => {
                        // Elements above the match were never closed by
                        // their own end tags — misnesting recovery.
                        diag.implicit_closes += stack.len() - pos - 1;
                        stack.truncate(pos);
                    }
                    _ => diag.stray_end_tags += 1,
                }
            }
        }
    }
    // Everything still open at EOF closes implicitly.
    diag.unclosed_tags += stack.len() - 1;
    Ok(doc)
}

/// Elements that cannot have content.
fn is_void(tag: &str) -> bool {
    matches!(
        tag,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

fn is_heading(tag: &str) -> bool {
    matches!(tag, "h1" | "h2" | "h3" | "h4" | "h5" | "h6")
}

/// Whether an incoming start tag `new` implicitly closes the open tag
/// `open` (the browser "you forgot the end tag" rules we need).
fn implicitly_closes(new: &str, open: &str) -> bool {
    match new {
        "li" => open == "li",
        "dt" | "dd" => matches!(open, "dt" | "dd"),
        "p" => open == "p",
        "tr" => matches!(open, "tr" | "td" | "th"),
        "td" | "th" => matches!(open, "td" | "th"),
        // A new table section closes the previous one and any open row.
        "thead" | "tbody" | "tfoot" => {
            matches!(open, "thead" | "tbody" | "tfoot" | "tr" | "td" | "th")
        }
        "option" => open == "option",
        "optgroup" => matches!(open, "option" | "optgroup"),
        // A new heading closes an open paragraph or an open heading.
        h if is_heading(h) => open == "p" || is_heading(open),
        // Block-level elements close an open paragraph.
        "table" | "ul" | "ol" | "dl" | "div" | "section" | "article" | "aside" | "nav"
        | "header" | "footer" | "figure" | "blockquote" | "pre" | "form" | "fieldset"
        | "address" | "main" => open == "p",
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(doc: &Document) -> Vec<String> {
        doc.iter()
            .filter_map(|n| doc.tag(n).map(String::from))
            .collect()
    }

    #[test]
    fn nested_structure() {
        let doc = parse_html("<div><p>one</p><p>two</p></div>");
        assert_eq!(tags(&doc), ["div", "p", "p"]);
        let div = doc.iter().find(|&n| doc.tag(n) == Some("div")).unwrap();
        assert_eq!(doc.child_elements(div).len(), 2);
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse_html("<p>a<br>b</p>");
        let br = doc.iter().find(|&n| doc.tag(n) == Some("br")).unwrap();
        assert!(doc.node(br).children.is_empty());
        assert_eq!(doc.text_content(doc.root()), "a b");
    }

    #[test]
    fn implicit_li_close() {
        let doc = parse_html("<ul><li>a<li>b<li>c</ul>");
        let ul = doc.iter().find(|&n| doc.tag(n) == Some("ul")).unwrap();
        assert_eq!(doc.child_elements(ul).len(), 3);
    }

    #[test]
    fn implicit_p_close() {
        let doc = parse_html("<p>one<p>two");
        assert_eq!(tags(&doc), ["p", "p"]);
    }

    #[test]
    fn implicit_table_cells() {
        let doc = parse_html("<table><tr><td>a<td>b<tr><td>c</table>");
        let trs: Vec<_> = doc.iter().filter(|&n| doc.tag(n) == Some("tr")).collect();
        assert_eq!(trs.len(), 2);
        assert_eq!(doc.child_elements(trs[0]).len(), 2);
        assert_eq!(doc.child_elements(trs[1]).len(), 1);
    }

    #[test]
    fn implicit_table_sections() {
        let doc = parse_html("<table><thead><tr><th>h</th><tbody><tr><td>a</table>");
        let table = doc.iter().find(|&n| doc.tag(n) == Some("table")).unwrap();
        let sections: Vec<_> = doc
            .child_elements(table)
            .iter()
            .filter_map(|&n| doc.tag(n).map(String::from))
            .collect();
        assert_eq!(sections, ["thead", "tbody"]);
    }

    #[test]
    fn stray_end_tag_ignored() {
        let doc = parse_html("</div><p>x</p>");
        assert_eq!(tags(&doc), ["p"]);
        assert_eq!(doc.text_content(doc.root()), "x");
    }

    #[test]
    fn unclosed_elements_closed_at_eof() {
        let doc = parse_html("<div><p>dangling");
        assert_eq!(tags(&doc), ["div", "p"]);
        assert_eq!(doc.text_content(doc.root()), "dangling");
    }

    #[test]
    fn scripts_and_styles_dropped() {
        let doc = parse_html("<p>keep</p><script>var x = '<p>no</p>';</script><style>p{}</style>");
        assert_eq!(tags(&doc), ["p"]);
        assert_eq!(doc.text_content(doc.root()), "keep");
    }

    #[test]
    fn textarea_content_is_kept() {
        // Unlike script/style, textarea content is visible text the
        // extraction pipeline must see.
        let doc = parse_html("<p>a</p><textarea>Draft &amp; notes</textarea>");
        assert_eq!(tags(&doc), ["p", "textarea"]);
        assert_eq!(doc.text_content(doc.root()), "a Draft & notes");
    }

    #[test]
    fn comments_and_doctype_dropped() {
        let doc = parse_html("<!DOCTYPE html><!-- c --><p>x</p>");
        assert_eq!(tags(&doc), ["p"]);
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let doc = parse_html("<div>\n  <p>x</p>\n</div>");
        let div = doc.iter().find(|&n| doc.tag(n) == Some("div")).unwrap();
        assert_eq!(doc.node(div).children.len(), 1);
    }

    #[test]
    fn mismatched_nesting_recovers() {
        // </b> closes nothing that exists; <i> stays open to EOF.
        let doc = parse_html("<i>a</b>b");
        assert_eq!(doc.text_content(doc.root()), "ab");
    }

    #[test]
    fn heading_closes_paragraph() {
        let doc = parse_html("<p>intro<h2>Section</h2>");
        assert_eq!(tags(&doc), ["p", "h2"]);
        // h2 must be a sibling of p, not its child
        let h2 = doc.iter().find(|&n| doc.tag(n) == Some("h2")).unwrap();
        let p = doc.iter().find(|&n| doc.tag(n) == Some("p")).unwrap();
        assert_eq!(doc.node(h2).parent, doc.node(p).parent);
    }

    #[test]
    fn heading_closes_open_heading() {
        let doc = parse_html("<h1>Title<h2>Section</h2>");
        let h1 = doc.iter().find(|&n| doc.tag(n) == Some("h1")).unwrap();
        let h2 = doc.iter().find(|&n| doc.tag(n) == Some("h2")).unwrap();
        assert_eq!(doc.node(h1).parent, doc.node(h2).parent);
    }

    #[test]
    fn empty_input_is_empty_doc() {
        let doc = parse_html("");
        assert!(doc.is_empty());
    }

    #[test]
    fn deeply_nested_does_not_overflow() {
        let mut s = String::new();
        for _ in 0..2000 {
            s.push_str("<div>");
        }
        s.push('x');
        let doc = parse_html(&s);
        assert_eq!(doc.text_content(doc.root()), "x");
    }

    #[test]
    fn diagnostics_count_each_recovery_path() {
        // Clean page: all-zero.
        let (_, diag) = parse_html_report("<div><p>x</p></div>");
        assert!(diag.is_clean(), "{diag:?}");
        // One of each.
        let (_, diag) = parse_html_report("<ul><li>a<li>b</ul></div><p>&bogus;<div>dangling");
        // <li> closes <li>; </ul> closes the open <li>; <div> closes <p>.
        assert_eq!(diag.implicit_closes, 3);
        assert_eq!(diag.stray_end_tags, 1); // </div> after </ul>
        assert_eq!(diag.unknown_entities, 1); // &bogus;
        assert_eq!(diag.unclosed_tags, 1); // the final <div>
    }

    #[test]
    fn misnested_end_tag_counts_implicit_closes() {
        let (_, diag) = parse_html_report("<b><i>x</b>y");
        // </b> closes <i> implicitly, <b> properly; nothing else is open.
        assert_eq!(diag.implicit_closes, 1);
        assert_eq!(diag.unclosed_tags, 0);
    }

    #[test]
    fn try_parse_accepts_ordinary_sloppiness() {
        // Unclosed tags, stray end tags, entities that decode: all fine.
        for html in [
            "<div><p>dangling",
            "</div><p>x</p>",
            "<p>Smith &amp; Jones &#39;21</p>",
            "<ul><li>a<li>b</ul>",
            "",
        ] {
            let fallible = try_parse_html(html).expect(html);
            let lenient = parse_html(html);
            assert_eq!(
                fallible.text_content(fallible.root()),
                lenient.text_content(lenient.root()),
                "fallible and lenient trees diverge on {html:?}"
            );
        }
    }

    #[test]
    fn try_parse_rejects_runaway_nesting() {
        let mut s = String::new();
        for _ in 0..(MAX_OPEN_DEPTH + 10) {
            s.push_str("<div>");
        }
        s.push('x');
        match try_parse_html(&s) {
            Err(HtmlError::TooDeep {
                depth,
                limit,
                offset,
            }) => {
                assert_eq!(limit, MAX_OPEN_DEPTH);
                assert!(depth > limit);
                // The offending open tag is the (limit+1)-th "<div>",
                // 5 bytes each.
                assert_eq!(offset, MAX_OPEN_DEPTH * 5);
            }
            other => panic!("expected TooDeep, got {other:?}"),
        }
        // Properly closed nesting of the same *total* tag count is fine.
        let balanced = "<div><p>x</p></div>".repeat(MAX_OPEN_DEPTH);
        assert!(try_parse_html(&balanced).is_ok());
    }

    #[test]
    fn try_parse_rejects_malformed_entities() {
        match try_parse_html("<p>dose: 50&bogus;mg</p>") {
            Err(HtmlError::MalformedEntity { entity, offset }) => {
                assert_eq!(entity, "&bogus;");
                assert_eq!(offset, 11);
            }
            other => panic!("expected MalformedEntity, got {other:?}"),
        }
        // Out-of-range numeric reference.
        assert!(matches!(
            try_parse_html("<p>&#x110000;</p>"),
            Err(HtmlError::MalformedEntity { .. })
        ));
        // A bare ampersand is not an entity attempt.
        assert!(try_parse_html("<p>a & b</p>").is_ok());
        // `&&` and bracketed code are not entity attempts either.
        assert!(try_parse_html("<p>a && b; c</p>").is_ok());
    }

    #[test]
    fn try_parse_rejects_malformed_entities_in_attributes() {
        // Attribute values survive into the tree, so they are checked.
        assert!(matches!(
            try_parse_html(r#"<a title="A &bogus; B">x</a>"#),
            Err(HtmlError::MalformedEntity { entity, .. }) if entity == "&bogus;"
        ));
    }

    #[test]
    fn try_parse_checks_textarea_content() {
        // Textarea raw text survives into the tree, so it is checked…
        assert!(matches!(
            try_parse_html("<textarea>50&bogus;mg</textarea>"),
            Err(HtmlError::MalformedEntity { entity, .. }) if entity == "&bogus;"
        ));
        // …and decodes like ordinary text when well-formed.
        let doc = try_parse_html("<textarea>a &amp; b</textarea>").unwrap();
        assert_eq!(doc.text_content(doc.root()), "a & b");
    }

    #[test]
    fn try_parse_ignores_damage_in_dropped_content() {
        // Script/style raw text and comments never reach the tree; an
        // entity-shaped string there must not fail ingestion.
        for html in [
            "<script>var u = 'page?a=1&id2;';</script><p>ok</p>",
            "<style>p::after { content: '&x;' }</style><p>ok</p>",
            "<!-- &bogus; --><p>ok</p>",
        ] {
            let doc = try_parse_html(html).expect(html);
            assert_eq!(doc.text_content(doc.root()), "ok");
        }
    }
}
