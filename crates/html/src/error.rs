//! Diagnostics for the fallible parsing entry points.
//!
//! The lenient paths ([`crate::parse_html`], [`crate::PageTree::parse`])
//! never fail — they recover the way browsers do. The engine-facing paths
//! ([`crate::try_parse_html`], [`crate::PageTree::try_parse`]) instead
//! surface the two classes of damage that lenient recovery would silently
//! paper over on ingested real-world pages: runaway unclosed-tag nesting
//! (usually truncated or machine-mangled HTML) and character references
//! that look like entities but decode to nothing (usually a bad encoding
//! pass upstream).

use std::fmt;

/// Maximum open-element nesting depth accepted by the fallible parsers.
///
/// Hand-written semi-structured pages sit well under 100 levels; depth
/// beyond this almost always means unclosed tags accumulating without
/// bound (e.g. a template loop emitting `<div>` with no `</div>`).
pub const MAX_OPEN_DEPTH: usize = 256;

/// A diagnostic from [`crate::try_parse_html`] / [`crate::PageTree::try_parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmlError {
    /// The open-element stack exceeded [`MAX_OPEN_DEPTH`] — unclosed tags
    /// are nesting without bound.
    TooDeep {
        /// The depth at which parsing was abandoned.
        depth: usize,
        /// The configured limit ([`MAX_OPEN_DEPTH`]).
        limit: usize,
    },
    /// A character reference that looks like an entity (`&name;`,
    /// `&#digits;`, `&#xhex;`) but does not decode.
    ///
    /// Deliberately stricter than HTML5, which treats an unknown named
    /// reference as literal text: on the ingestion path, an undecodable
    /// entity-shaped string usually means a bad encoding pass upstream,
    /// and silently keeping it verbatim would poison extraction. The
    /// cost is that prose like `"Q&As;"` is rejected too — callers with
    /// such pages should use the lenient path
    /// ([`crate::PageTree::parse`], CLI `run --lenient`).
    MalformedEntity {
        /// The offending reference, including `&` and `;`.
        entity: String,
        /// Byte offset of the `&` in the input.
        offset: usize,
    },
}

impl fmt::Display for HtmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HtmlError::TooDeep { depth, limit } => write!(
                f,
                "unclosed-tag nesting reached depth {depth} (limit {limit})"
            ),
            HtmlError::MalformedEntity { entity, offset } => {
                write!(
                    f,
                    "malformed character reference {entity:?} at byte {offset}"
                )
            }
        }
    }
}

impl std::error::Error for HtmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_evidence() {
        let e = HtmlError::TooDeep {
            depth: 300,
            limit: MAX_OPEN_DEPTH,
        };
        assert!(e.to_string().contains("300"));
        assert!(e.to_string().contains("256"));
        let e = HtmlError::MalformedEntity {
            entity: "&bogus;".into(),
            offset: 7,
        };
        assert!(e.to_string().contains("&bogus;"));
        assert!(e.to_string().contains("7"));
    }
}
