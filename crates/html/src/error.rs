//! Diagnostics for the fallible parsing entry points.
//!
//! The lenient paths ([`crate::parse_html`], [`crate::PageTree::parse`])
//! never fail — they recover the way browsers do. The engine-facing paths
//! ([`crate::try_parse_html`], [`crate::PageTree::try_parse`]) instead
//! surface the two classes of damage that lenient recovery would silently
//! paper over on ingested real-world pages: runaway unclosed-tag nesting
//! (usually truncated or machine-mangled HTML) and character references
//! that look like entities but decode to nothing (usually a bad encoding
//! pass upstream).

use std::fmt;

/// Maximum open-element nesting depth accepted by the fallible parsers.
///
/// Hand-written semi-structured pages sit well under 100 levels; depth
/// beyond this almost always means unclosed tags accumulating without
/// bound (e.g. a template loop emitting `<div>` with no `</div>`).
pub const MAX_OPEN_DEPTH: usize = 256;

/// A diagnostic from [`crate::try_parse_html`] / [`crate::PageTree::try_parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmlError {
    /// The open-element stack exceeded [`MAX_OPEN_DEPTH`] — unclosed tags
    /// are nesting without bound.
    TooDeep {
        /// The depth at which parsing was abandoned.
        depth: usize,
        /// The configured limit ([`MAX_OPEN_DEPTH`]).
        limit: usize,
        /// Byte offset in the input of the open tag that breached the
        /// limit — where to look in a multi-megabyte page, not just that
        /// a limit exists somewhere.
        offset: usize,
    },
    /// A character reference that looks like an entity (`&name;`,
    /// `&#digits;`, `&#xhex;`) but does not decode.
    ///
    /// Deliberately stricter than HTML5, which treats an unknown named
    /// reference as literal text: on the ingestion path, an undecodable
    /// entity-shaped string usually means a bad encoding pass upstream,
    /// and silently keeping it verbatim would poison extraction. The
    /// cost is that prose like `"Q&As;"` is rejected too — callers with
    /// such pages should use the lenient path
    /// ([`crate::PageTree::parse`], CLI `run --lenient`).
    MalformedEntity {
        /// The offending reference, including `&` and `;`.
        entity: String,
        /// Byte offset of the `&` in the input.
        offset: usize,
    },
}

impl fmt::Display for HtmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HtmlError::TooDeep {
                depth,
                limit,
                offset,
            } => write!(
                f,
                "unclosed-tag nesting reached depth {depth} (limit {limit}) at the open tag at byte {offset}"
            ),
            HtmlError::MalformedEntity { entity, offset } => {
                write!(
                    f,
                    "malformed character reference {entity:?} at byte {offset}"
                )
            }
        }
    }
}

impl std::error::Error for HtmlError {}

/// Recovery statistics from one lenient parse
/// ([`crate::parse_html_report`] / [`crate::PageTree::parse_report`]).
///
/// The lenient parsers never fail; these counters say how much browser-style
/// recovery a page actually needed, so ingestion tooling (CLI `import`)
/// can report *which* files were messy and the conformance corpus can pin
/// that each recovery path fires exactly when it should. All-zero means
/// the page parsed without any recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParseDiagnostics {
    /// Character references that look like entities (`&name;`,
    /// `&#digits;`, `&#xhex;`) but decode to nothing and were kept
    /// verbatim — the lenient fallback the strict path rejects as
    /// [`HtmlError::MalformedEntity`]. Counted only in content that
    /// survives into the tree (text runs, attribute values, `<textarea>`
    /// raw text) — never inside comments or `<script>`/`<style>`.
    pub unknown_entities: usize,
    /// End tags with no matching open element, dropped.
    pub stray_end_tags: usize,
    /// Elements still open at end of input, closed implicitly.
    pub unclosed_tags: usize,
    /// Elements closed implicitly by a later start tag (`<li>` closing an
    /// open `<li>`, a heading closing an open `<p>`, …).
    pub implicit_closes: usize,
}

impl ParseDiagnostics {
    /// Whether the parse needed no recovery at all.
    pub fn is_clean(&self) -> bool {
        *self == ParseDiagnostics::default()
    }

    /// Compact `key=value` rendering of the non-zero counters, or
    /// `"clean"` — the per-file summary `webqa-cli import` prints.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for (name, value) in [
            ("unknown-entities", self.unknown_entities),
            ("stray-end-tags", self.stray_end_tags),
            ("unclosed-tags", self.unclosed_tags),
            ("implicit-closes", self.implicit_closes),
        ] {
            if value > 0 {
                parts.push(format!("{name}={value}"));
            }
        }
        if parts.is_empty() {
            "clean".to_string()
        } else {
            parts.join(" ")
        }
    }
}

impl fmt::Display for ParseDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_evidence() {
        let e = HtmlError::TooDeep {
            depth: 300,
            limit: MAX_OPEN_DEPTH,
            offset: 1495,
        };
        assert!(e.to_string().contains("300"));
        assert!(e.to_string().contains("256"));
        assert!(e.to_string().contains("byte 1495"));
        let e = HtmlError::MalformedEntity {
            entity: "&bogus;".into(),
            offset: 7,
        };
        assert!(e.to_string().contains("&bogus;"));
        assert!(e.to_string().contains("7"));
    }

    #[test]
    fn diagnostics_summary_lists_only_nonzero_counters() {
        let clean = ParseDiagnostics::default();
        assert!(clean.is_clean());
        assert_eq!(clean.summary(), "clean");
        let diag = ParseDiagnostics {
            unknown_entities: 2,
            stray_end_tags: 0,
            unclosed_tags: 1,
            implicit_closes: 0,
        };
        assert!(!diag.is_clean());
        assert_eq!(diag.summary(), "unknown-entities=2 unclosed-tags=1");
        assert_eq!(diag.to_string(), diag.summary());
    }
}
