//! HTML serialization: [`Document`] → HTML text.
//!
//! The inverse of [`crate::parse_html`] up to parser normalization (tag
//! lowercasing, attribute-quote canonicalization, implicit-tag-close
//! insertion, entity decoding). Serializing a parsed document and
//! re-parsing it yields an *identical* DOM — the fixpoint property the
//! round-trip tests rely on — which makes the serializer the tool for
//! exporting generated corpus pages and for golden-file debugging of
//! parser changes.

use crate::dom::{Document, NodeData, NodeId};

/// Tags serialized without a closing tag (HTML void elements).
const VOID_TAGS: [&str; 8] = ["br", "hr", "img", "input", "meta", "link", "area", "base"];

/// Tags whose raw text content must not be entity-escaped.
const RAW_TEXT_TAGS: [&str; 2] = ["script", "style"];

/// Serializes a document to HTML.
///
/// Element tags and attributes are emitted as stored (the parser already
/// lowercased tags); text is entity-escaped so the output re-parses to
/// the same text nodes.
pub fn serialize(doc: &Document) -> String {
    let mut out = String::new();
    for &child in &doc.node(doc.root()).children {
        serialize_node(doc, child, &mut out);
    }
    out
}

fn serialize_node(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).data {
        NodeData::Document => {
            for &child in &doc.node(id).children {
                serialize_node(doc, child, out);
            }
        }
        NodeData::Text(t) => {
            let parent_tag = doc
                .node(id)
                .parent
                .and_then(|p| doc.tag(p).map(str::to_string));
            if parent_tag
                .as_deref()
                .is_some_and(|t| RAW_TEXT_TAGS.contains(&t))
            {
                out.push_str(t);
            } else {
                escape_into(t, out);
            }
        }
        NodeData::Element { tag, attrs } => {
            out.push('<');
            out.push_str(tag);
            for a in attrs {
                out.push(' ');
                out.push_str(&a.name);
                out.push_str("=\"");
                escape_attr_into(&a.value, out);
                out.push('"');
            }
            out.push('>');
            if VOID_TAGS.contains(&tag.as_str()) {
                return;
            }
            for &child in &doc.node(id).children {
                serialize_node(doc, child, out);
            }
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Escapes text content (`&`, `<`, `>`).
fn escape_into(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Escapes attribute values (`&`, `"`).
fn escape_attr_into(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_html;

    #[track_caller]
    fn round_trips(html: &str) {
        let doc = parse_html(html);
        let emitted = serialize(&doc);
        let reparsed = parse_html(&emitted);
        assert_eq!(
            doc, reparsed,
            "serialize({html:?}) = {emitted:?} reparses differently"
        );
    }

    #[test]
    fn simple_documents_round_trip() {
        round_trips("<h1>Title</h1><p>Body text.</p>");
        round_trips("<h1>A</h1><h2>Students</h2><ul><li>Jane</li><li>Bob</li></ul>");
        round_trips("<table><tr><td>a</td><td>b</td></tr></table>");
    }

    #[test]
    fn attributes_are_preserved() {
        let doc = parse_html("<div class=\"x y\" id='main'><p>t</p></div>");
        let emitted = serialize(&doc);
        assert!(emitted.contains("class=\"x y\""), "{emitted}");
        assert!(emitted.contains("id=\"main\""), "{emitted}");
        round_trips("<div class=\"x y\" id='main'><p>t</p></div>");
    }

    #[test]
    fn entities_escape_and_round_trip() {
        // The parser decodes &amp; into '&'; serialization must re-escape
        // it so the text survives another parse.
        let doc = parse_html("<p>Tom &amp; Jerry &lt;3</p>");
        let emitted = serialize(&doc);
        assert!(emitted.contains("&amp;"), "{emitted}");
        round_trips("<p>Tom &amp; Jerry &lt;3</p>");
    }

    #[test]
    fn attribute_quotes_escape() {
        let mut doc = Document::new();
        let root = doc.root();
        let el = doc.append_element(
            root,
            "p",
            vec![crate::tokenizer::Attribute {
                name: "title".into(),
                value: "say \"hi\" & more".into(),
            }],
        );
        doc.append_text(el, "x");
        let emitted = serialize(&doc);
        assert!(emitted.contains("&quot;hi&quot;"), "{emitted}");
        assert_eq!(parse_html(&emitted), doc);
    }

    #[test]
    fn void_elements_have_no_close_tag() {
        let doc = parse_html("<p>a<br>b</p>");
        let emitted = serialize(&doc);
        assert!(emitted.contains("<br>"), "{emitted}");
        assert!(!emitted.contains("</br>"), "{emitted}");
        round_trips("<p>a<br>b</p>");
    }

    #[test]
    fn parsed_scripts_are_dropped_entirely() {
        // The parser removes scripts (Section 7 of the paper), so they
        // never reach serialization.
        let doc = parse_html("<script>if (a < b && c) { go(); }</script><p>t</p>");
        let emitted = serialize(&doc);
        assert!(!emitted.contains("script"), "{emitted}");
        assert!(emitted.contains("<p>t</p>"), "{emitted}");
    }

    #[test]
    fn hand_built_script_content_is_not_escaped() {
        // Raw-text handling still matters for hand-built documents.
        let mut doc = Document::new();
        let root = doc.root();
        let el = doc.append_element(root, "script", Vec::new());
        doc.append_text(el, "if (a < b && c) { go(); }");
        let emitted = serialize(&doc);
        assert!(emitted.contains("a < b && c"), "{emitted}");
    }

    #[test]
    fn serialization_is_a_fixpoint() {
        // serialize ∘ parse is idempotent: a second round adds nothing.
        let html = "<h1>T</h1><div class='c'><ul><li>a &amp; b</li></ul></div>";
        let once = serialize(&parse_html(html));
        let twice = serialize(&parse_html(&once));
        assert_eq!(once, twice);
    }
}
