//! The paper's webpage representation (Definition 3.1).
//!
//! A webpage is a tree `(N, E, n₀)` where each node is `(id, text, type)`
//! with `type ∈ {list, table, none}`, and an edge `(n, n′)` means the text
//! of `n` is the *header* for the text of `n′` on the rendered page.
//!
//! Section 7 ("Parsing") describes the conversion we implement here: parse
//! the HTML into a DOM (with scripts/images removed), then follow the
//! standard header hierarchy — `H1` is the root and `H(i+1)` headers become
//! children of the enclosing `Hi` header. Additionally (Figure 4):
//!
//! * an HTML list attaches its items as children of the current section
//!   node and marks that node `list` (node 7 "PhD students" / node 11
//!   "Professional Service" in the paper's Figure 4);
//! * a table attaches its rows the same way with type `table`;
//! * short, fully-bold paragraphs and `<dt>` terms act as pseudo-headers
//!   one level below the enclosing header (how "PhD students" nests under
//!   "Students" in Figure 4).

use crate::dom::{normalize_ws, Document, NodeData, NodeId};
use crate::error::{HtmlError, ParseDiagnostics};
use crate::parse::{parse_html, parse_html_report, try_parse_html};

/// The type tag of a page-tree node (Definition 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodeKind {
    /// Plain section / text node.
    #[default]
    None,
    /// Node whose children are elements of an HTML list.
    List,
    /// Node whose children are rows of an HTML table.
    Table,
}

impl std::fmt::Display for NodeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            NodeKind::None => "none",
            NodeKind::List => "list",
            NodeKind::Table => "table",
        })
    }
}

/// Identifier of a node within a [`PageTree`] (dense, pre-order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageNodeId(pub usize);

impl PageNodeId {
    /// The raw index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One node of the page tree: `(id, text, type)` plus tree links.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PageNode {
    /// Whitespace-normalized text content of this node (*not* including
    /// descendant text — unlike the DOM, the page tree keeps header text
    /// and body text in separate nodes).
    pub text: String,
    /// The node type.
    pub kind: NodeKind,
    /// Parent node, `None` for the root.
    pub parent: Option<PageNodeId>,
    /// Children in page order.
    pub children: Vec<PageNodeId>,
}

/// The webpage tree of Definition 3.1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PageTree {
    nodes: Vec<PageNode>,
}

impl PageTree {
    /// Parses HTML and converts it into a page tree.
    ///
    /// # Examples
    ///
    /// ```
    /// use webqa_html::PageTree;
    /// let page = PageTree::parse(
    ///     "<h1>Jane Doe</h1><h2>Students</h2><ul><li>Robert Smith</li></ul>",
    /// );
    /// let root = page.root();
    /// assert_eq!(page.text(root), "Jane Doe");
    /// assert_eq!(page.children(root).len(), 1);
    /// ```
    pub fn parse(html: &str) -> Self {
        Self::from_document(&parse_html(html))
    }

    /// Parses like [`PageTree::parse`] (never fails), additionally
    /// returning how much browser-style recovery the page needed — the
    /// per-file diagnostics `webqa-cli import` reports.
    ///
    /// # Examples
    ///
    /// ```
    /// use webqa_html::PageTree;
    /// let (page, diag) = PageTree::parse_report("<h1>A</h1><p>50&bogus;mg");
    /// assert_eq!(page.text(page.root()), "A");
    /// assert_eq!(diag.unknown_entities, 1);
    /// assert_eq!(diag.unclosed_tags, 1);
    /// ```
    pub fn parse_report(html: &str) -> (Self, ParseDiagnostics) {
        let (doc, diag) = parse_html_report(html);
        (Self::from_document(&doc), diag)
    }

    /// Parses HTML into a page tree, surfacing the diagnostics the lenient
    /// [`PageTree::parse`] recovers from silently (runaway unclosed-tag
    /// nesting, undecodable character references).
    ///
    /// The engine routes page ingestion through this path; [`parse`]
    /// remains the infallible wrapper for trusted or already-vetted
    /// sources.
    ///
    /// # Errors
    ///
    /// See [`HtmlError`].
    ///
    /// # Examples
    ///
    /// ```
    /// use webqa_html::{HtmlError, PageTree};
    /// let page = PageTree::try_parse("<h1>Jane Doe</h1>").unwrap();
    /// assert_eq!(page.text(page.root()), "Jane Doe");
    /// assert!(matches!(
    ///     PageTree::try_parse("<p>50&bogus;mg</p>"),
    ///     Err(HtmlError::MalformedEntity { .. })
    /// ));
    /// ```
    ///
    /// [`parse`]: PageTree::parse
    pub fn try_parse(html: &str) -> Result<Self, HtmlError> {
        Ok(Self::from_document(&try_parse_html(html)?))
    }

    /// Converts a parsed [`Document`] into a page tree.
    pub fn from_document(doc: &Document) -> Self {
        Builder::new(doc).build()
    }

    /// The root node `n₀`.
    pub fn root(&self) -> PageNodeId {
        PageNodeId(0)
    }

    /// Number of nodes in the tree (≥ 1; the root always exists).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A page tree is never conceptually empty (the root exists), so this
    /// reports whether it has *only* the root with no text.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[0].text.is_empty()
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: PageNodeId) -> &PageNode {
        &self.nodes[id.0]
    }

    /// The text of node `id`.
    pub fn text(&self, id: PageNodeId) -> &str {
        &self.nodes[id.0].text
    }

    /// The kind of node `id`.
    pub fn kind(&self, id: PageNodeId) -> NodeKind {
        self.nodes[id.0].kind
    }

    /// Children of `id` in page order.
    pub fn children(&self, id: PageNodeId) -> &[PageNodeId] {
        &self.nodes[id.0].children
    }

    /// Whether `id` has no children.
    pub fn is_leaf(&self, id: PageNodeId) -> bool {
        self.nodes[id.0].children.is_empty()
    }

    /// Whether `id` is an element of a list or a row of a table — i.e. its
    /// parent is a `list`/`table` node (the DSL's `isElem` predicate).
    pub fn is_elem(&self, id: PageNodeId) -> bool {
        match self.nodes[id.0].parent {
            Some(p) => self.nodes[p.0].kind != NodeKind::None,
            None => false,
        }
    }

    /// Proper descendants of `id` in pre-order (excluding `id` itself).
    pub fn descendants(&self, id: PageNodeId) -> Vec<PageNodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<PageNodeId> = self.children(id).iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All node ids in pre-order, root first.
    pub fn iter(&self) -> impl Iterator<Item = PageNodeId> + '_ {
        (0..self.nodes.len()).map(PageNodeId)
    }

    /// Concatenated text of the subtree rooted at `id` (including `id`),
    /// used by `matchText(n, φ, b)` with `b = true`.
    pub fn subtree_text(&self, id: PageNodeId) -> String {
        let mut parts = vec![self.text(id).to_string()];
        for d in self.descendants(id) {
            parts.push(self.text(d).to_string());
        }
        normalize_ws(&parts.join(" "))
    }

    /// Depth of `id` (root = 0).
    pub fn depth(&self, id: PageNodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.nodes[cur.0].parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Renders the tree as an indented debug listing (one `id, kind, text`
    /// line per node), mirroring the paper's Figure 4.
    pub fn to_outline(&self) -> String {
        let mut out = String::new();
        self.outline_rec(self.root(), 0, &mut out);
        out
    }

    fn outline_rec(&self, id: PageNodeId, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let n = self.node(id);
        let _ = writeln!(
            out,
            "{}{}, {}: {}",
            "  ".repeat(depth),
            id.0,
            n.kind,
            n.text
        );
        for &c in &n.children {
            self.outline_rec(c, depth + 1, out);
        }
    }
}

/// Incremental page-tree builder used by the DOM conversion (and by the
/// corpus generator, which builds trees directly for its gold labels).
#[derive(Debug)]
pub struct PageTreeBuilder {
    nodes: Vec<PageNode>,
}

impl PageTreeBuilder {
    /// Starts a tree whose root has the given text.
    pub fn new(root_text: &str) -> Self {
        PageTreeBuilder {
            nodes: vec![PageNode {
                text: normalize_ws(root_text),
                kind: NodeKind::None,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// The root id.
    pub fn root(&self) -> PageNodeId {
        PageNodeId(0)
    }

    /// Adds a child with the given text under `parent`, returning its id.
    pub fn add_child(&mut self, parent: PageNodeId, text: &str) -> PageNodeId {
        let id = PageNodeId(self.nodes.len());
        self.nodes.push(PageNode {
            text: normalize_ws(text),
            kind: NodeKind::None,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Sets the kind of an existing node.
    pub fn set_kind(&mut self, id: PageNodeId, kind: NodeKind) {
        self.nodes[id.0].kind = kind;
    }

    /// Finishes the tree. Node ids are renumbered to pre-order so that a
    /// built tree is indistinguishable from a parsed one.
    pub fn finish(self) -> PageTree {
        // Renumber to pre-order.
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            order.push(i);
            for &PageNodeId(c) in self.nodes[i].children.iter().rev() {
                stack.push(c);
            }
        }
        let mut remap = vec![0usize; self.nodes.len()];
        for (new, &old) in order.iter().enumerate() {
            remap[old] = new;
        }
        let mut nodes: Vec<PageNode> = Vec::with_capacity(self.nodes.len());
        for &old in &order {
            let n = &self.nodes[old];
            nodes.push(PageNode {
                text: n.text.clone(),
                kind: n.kind,
                parent: n.parent.map(|PageNodeId(p)| PageNodeId(remap[p])),
                children: n
                    .children
                    .iter()
                    .map(|&PageNodeId(c)| PageNodeId(remap[c]))
                    .collect(),
            });
        }
        PageTree { nodes }
    }
}

// ---------------------------------------------------------------------------
// DOM → page tree conversion
// ---------------------------------------------------------------------------

struct Builder<'a> {
    doc: &'a Document,
    out: PageTreeBuilder,
    /// Stack of (level, node). Real headers use levels 10·k; pseudo-headers
    /// use the parent level + 1 so they always nest below real headers.
    stack: Vec<(u32, PageNodeId)>,
}

impl<'a> Builder<'a> {
    fn new(doc: &'a Document) -> Self {
        let root_text = find_root_text(doc);
        Builder {
            doc,
            out: PageTreeBuilder::new(&root_text),
            stack: Vec::new(),
        }
    }

    fn build(mut self) -> PageTree {
        let root = self.out.root();
        self.stack.push((0, root));
        self.walk(self.doc.root());
        self.out.finish()
    }

    fn top(&self) -> PageNodeId {
        self.stack.last().expect("stack never empty").1
    }

    fn top_level(&self) -> u32 {
        self.stack.last().expect("stack never empty").0
    }

    fn pop_to_level(&mut self, level: u32) {
        while self.stack.len() > 1 && self.top_level() >= level {
            self.stack.pop();
        }
    }

    fn walk(&mut self, dom: NodeId) {
        for &child in &self.doc.node(dom).children {
            match &self.doc.node(child).data {
                NodeData::Text(t) => {
                    let text = normalize_ws(t);
                    if !text.is_empty() {
                        self.out.add_child(self.top(), &text);
                    }
                }
                NodeData::Element { tag, .. } => self.element(child, tag.clone()),
                NodeData::Document => {}
            }
        }
    }

    fn element(&mut self, id: NodeId, tag: String) {
        match tag.as_str() {
            "h1" | "h2" | "h3" | "h4" | "h5" | "h6" => {
                let level = 10 * (tag.as_bytes()[1] - b'0') as u32;
                let text = self.doc.text_content(id);
                if level == 10 && self.out.root() == self.top() && self.node_count() == 1 {
                    // First H1 provides the root's text (already set by
                    // find_root_text); just reset the level.
                    self.pop_to_level(level);
                    self.stack.push((level, self.out.root()));
                    return;
                }
                self.pop_to_level(level);
                let node = self.out.add_child(self.top(), &text);
                self.stack.push((level, node));
            }
            "ul" | "ol" | "dl" => self.list(id),
            "table" => self.table(id),
            "p" | "blockquote" | "pre" | "address" | "figcaption" => {
                self.text_block(id);
            }
            "title" | "head" | "img" | "nav" | "footer" | "button" | "iframe" | "svg" | "form"
            | "input" | "select" | "noscript" => {
                // Removed during conversion ("unnecessary elements such as
                // images and scripts", Section 7). <title> feeds the root
                // text only.
            }
            "b" | "strong" => {
                // A bare bold run directly inside a container acts as a
                // pseudo-header (Figure 4's "PhD students").
                let text = self.doc.text_content(id);
                if !text.is_empty() {
                    self.push_pseudo_header(&text);
                }
            }
            "dt" => {
                let text = self.doc.text_content(id);
                if !text.is_empty() {
                    self.push_pseudo_header(&text);
                }
            }
            "dd" => self.text_block(id),
            "li" => {
                // A stray <li> outside a list: treat as a text block.
                self.text_block(id);
            }
            _ => {
                // Container elements (div, section, article, span, body…):
                // if the element is a pseudo-header (fully bold short text),
                // push it; otherwise if it holds direct text with no block
                // children, emit a text node; otherwise recurse.
                if let Some(header) = self.pseudo_header_text(id) {
                    self.push_pseudo_header(&header);
                } else if self.is_text_only(id) {
                    self.text_block(id);
                } else {
                    let before = self.stack.len();
                    self.walk(id);
                    // Pseudo-headers do not outlive their container.
                    self.truncate_pseudo(before);
                }
            }
        }
    }

    fn node_count(&self) -> usize {
        self.out.nodes.len()
    }

    fn push_pseudo_header(&mut self, text: &str) {
        // Pseudo-headers sit one level below the nearest *real* header, so
        // consecutive bold headers within a section are siblings.
        let base = self
            .stack
            .iter()
            .rev()
            .find(|(lvl, _)| lvl % 10 == 0)
            .map(|(lvl, _)| *lvl)
            .unwrap_or(0);
        let level = base + 1;
        self.pop_to_level_pseudo(level);
        let node = self.out.add_child(self.top(), text);
        self.stack.push((level, node));
    }

    /// Pops pseudo entries at or above `level`, but never a real header.
    fn pop_to_level_pseudo(&mut self, level: u32) {
        while self.stack.len() > 1
            && self.top_level() >= level
            && !self.top_level().is_multiple_of(10)
        {
            self.stack.pop();
        }
    }

    fn truncate_pseudo(&mut self, saved_len: usize) {
        while self.stack.len() > saved_len && !self.top_level().is_multiple_of(10) {
            self.stack.pop();
        }
    }

    /// If `id` is a short element whose entire content is bold, return the
    /// text — it functions as a section header visually.
    fn pseudo_header_text(&self, id: NodeId) -> Option<String> {
        let elems = self.doc.child_elements(id);
        if elems.len() != 1 {
            return None;
        }
        let only = elems[0];
        let tag = self.doc.tag(only)?;
        if tag != "b" && tag != "strong" {
            return None;
        }
        let all_text = self.doc.text_content(id);
        let bold_text = self.doc.text_content(only);
        if all_text == bold_text && !all_text.is_empty() && all_text.len() <= 80 {
            Some(all_text)
        } else {
            None
        }
    }

    /// True when `id` contains no block-level children — its text can be
    /// emitted as a single leaf.
    fn is_text_only(&self, id: NodeId) -> bool {
        let has_text = !self.doc.text_content(id).is_empty();
        has_text
            && self
                .doc
                .descendants(id)
                .skip(1)
                .all(|d| match self.doc.node(d).data {
                    NodeData::Element { ref tag, .. } => !crate::dom::is_block(tag),
                    _ => true,
                })
    }

    fn text_block(&mut self, id: NodeId) {
        // A text block that itself contains a list (rare but legal HTML)
        // falls back to container behaviour.
        let contains_list = self
            .doc
            .descendants(id)
            .skip(1)
            .any(|d| matches!(self.doc.tag(d), Some("ul" | "ol" | "table" | "dl")));
        if contains_list {
            self.walk(id);
            return;
        }
        // A pseudo-header written as <p><b>…</b></p>.
        if let Some(header) = self.pseudo_header_text(id) {
            self.push_pseudo_header(&header);
            return;
        }
        let text = self.doc.text_content(id);
        if !text.is_empty() {
            self.out.add_child(self.top(), &text);
        }
    }

    fn list(&mut self, id: NodeId) {
        let holder = self.top();
        self.out.set_kind(holder, NodeKind::List);
        for item in self.doc.child_elements(id) {
            match self.doc.tag(item) {
                Some("li" | "dd" | "dt") => self.list_item(item, holder),
                // Lists sometimes wrap items in stray containers; recurse.
                _ => self.list(item),
            }
        }
    }

    /// One `<li>`: direct text becomes a child node of `holder`; a nested
    /// list inside the item attaches its items under the item node.
    fn list_item(&mut self, li: NodeId, holder: PageNodeId) {
        let nested: Vec<NodeId> = self
            .doc
            .child_elements(li)
            .into_iter()
            .filter(|&c| matches!(self.doc.tag(c), Some("ul" | "ol")))
            .collect();
        let direct_text = {
            // Text of the li excluding nested lists.
            let mut s = String::new();
            self.collect_text_excluding(li, &nested, &mut s);
            normalize_ws(&s)
        };
        let item_node = self.out.add_child(holder, &direct_text);
        if !nested.is_empty() {
            self.out.set_kind(item_node, NodeKind::List);
            for n in nested {
                for sub in self.doc.child_elements(n) {
                    self.list_item(sub, item_node);
                }
            }
        }
    }

    fn collect_text_excluding(&self, id: NodeId, excluded: &[NodeId], out: &mut String) {
        if excluded.contains(&id) {
            return;
        }
        match &self.doc.node(id).data {
            NodeData::Text(t) => {
                out.push_str(t);
                out.push(' ');
            }
            _ => {
                for &c in &self.doc.node(id).children {
                    self.collect_text_excluding(c, excluded, out);
                }
            }
        }
    }

    fn table(&mut self, id: NodeId) {
        let holder = self.top();
        self.out.set_kind(holder, NodeKind::Table);
        for row in self.table_rows(id) {
            let cells: Vec<String> = self
                .doc
                .child_elements(row)
                .into_iter()
                .filter(|&c| matches!(self.doc.tag(c), Some("td" | "th")))
                .map(|c| self.doc.text_content(c))
                .collect();
            let text = if cells.len() == 2 {
                format!("{}: {}", cells[0], cells[1])
            } else {
                cells.join(", ")
            };
            if !text.is_empty() {
                self.out.add_child(holder, &text);
            }
        }
    }

    fn table_rows(&self, table: NodeId) -> Vec<NodeId> {
        let mut rows = Vec::new();
        for c in self.doc.descendants(table).skip(1) {
            if self.doc.tag(c) == Some("tr") {
                rows.push(c);
            }
        }
        rows
    }
}

/// Root text: the first `<h1>` if present, else the `<title>`, else "".
fn find_root_text(doc: &Document) -> String {
    for n in doc.iter() {
        if doc.tag(n) == Some("h1") {
            return doc.text_content(n);
        }
    }
    for n in doc.iter() {
        if doc.tag(n) == Some("title") {
            return doc.text_content(n);
        }
    }
    String::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2_TOP: &str = r#"
<h1>Jane Doe</h1>
<p>university janedoe at university.edu +00 123-456-7890</p>
<h2>Recent Publications</h2>
<p>Synthesizing programs from examples. Jane Doe. PLDI 2018.</p>
<h2>Students</h2>
<b>PhD students</b>
<ul><li>Robert Smith</li><li>Mary Anderson</li></ul>
<h2>Activities</h2>
<b>Professional Services</b>
<ul><li>Current: PLDI '21 (PC)</li><li>Past: CAV '20 (PC), PLDI '20 (SRC)</li></ul>
"#;

    #[test]
    fn figure4_shape() {
        let page = PageTree::parse(FIG2_TOP);
        let root = page.root();
        assert_eq!(page.text(root), "Jane Doe");
        let sections: Vec<&str> = page.children(root).iter().map(|&c| page.text(c)).collect();
        assert!(sections.contains(&"Students"));
        assert!(sections.contains(&"Activities"));

        let students = page
            .children(root)
            .iter()
            .copied()
            .find(|&c| page.text(c) == "Students")
            .unwrap();
        let phd = page.children(students)[0];
        assert_eq!(page.text(phd), "PhD students");
        assert_eq!(page.kind(phd), NodeKind::List);
        let names: Vec<&str> = page.children(phd).iter().map(|&c| page.text(c)).collect();
        assert_eq!(names, ["Robert Smith", "Mary Anderson"]);

        let activities = page
            .children(root)
            .iter()
            .copied()
            .find(|&c| page.text(c) == "Activities")
            .unwrap();
        let service = page.children(activities)[0];
        assert_eq!(page.text(service), "Professional Services");
        assert_eq!(page.kind(service), NodeKind::List);
        assert_eq!(page.children(service).len(), 2);
    }

    #[test]
    fn is_elem_true_only_under_list_or_table() {
        let page = PageTree::parse(FIG2_TOP);
        for id in page.iter() {
            let parent_is_struct = page
                .node(id)
                .parent
                .map(|p| page.kind(p) != NodeKind::None)
                .unwrap_or(false);
            assert_eq!(page.is_elem(id), parent_is_struct);
        }
    }

    #[test]
    fn header_hierarchy_nesting() {
        let page =
            PageTree::parse("<h1>R</h1><h2>A</h2><h3>A1</h3><p>x</p><h3>A2</h3><h2>B</h2><p>y</p>");
        let root = page.root();
        let kids: Vec<&str> = page.children(root).iter().map(|&c| page.text(c)).collect();
        assert_eq!(kids, ["A", "B"]);
        let a = page.children(root)[0];
        let a_kids: Vec<&str> = page.children(a).iter().map(|&c| page.text(c)).collect();
        assert_eq!(a_kids, ["A1", "A2"]);
        let a1 = page.children(a)[0];
        assert_eq!(page.text(page.children(a1)[0]), "x");
    }

    #[test]
    fn skipping_header_levels() {
        // h3 directly under h1 still nests under the root.
        let page = PageTree::parse("<h1>R</h1><h3>Deep</h3><p>x</p>");
        let root = page.root();
        assert_eq!(page.children(root).len(), 1);
        let deep = page.children(root)[0];
        assert_eq!(page.text(deep), "Deep");
        assert!(!page.is_leaf(deep));
    }

    #[test]
    fn no_h1_uses_title() {
        let page = PageTree::parse("<title>Dr. Who</title><h2>S</h2><p>x</p>");
        assert_eq!(page.text(page.root()), "Dr. Who");
    }

    #[test]
    fn table_rows_become_children() {
        let page = PageTree::parse(
            "<h1>R</h1><h2>Logistics</h2><table><tr><td>Instructor</td><td>Jane</td></tr>\
             <tr><td>Time</td><td>MWF 10:00</td></tr></table>",
        );
        let root = page.root();
        let sec = page.children(root)[0];
        assert_eq!(page.kind(sec), NodeKind::Table);
        let rows: Vec<&str> = page.children(sec).iter().map(|&c| page.text(c)).collect();
        assert_eq!(rows, ["Instructor: Jane", "Time: MWF 10:00"]);
    }

    #[test]
    fn nested_lists() {
        let page = PageTree::parse(
            "<h1>R</h1><h2>Topics</h2><ul><li>PL<ul><li>synthesis</li><li>types</li></ul></li>\
             <li>Systems</li></ul>",
        );
        let root = page.root();
        let topics = page.children(root)[0];
        assert_eq!(page.kind(topics), NodeKind::List);
        let pl = page.children(topics)[0];
        assert_eq!(page.text(pl), "PL");
        assert_eq!(page.kind(pl), NodeKind::List);
        let subs: Vec<&str> = page.children(pl).iter().map(|&c| page.text(c)).collect();
        assert_eq!(subs, ["synthesis", "types"]);
    }

    #[test]
    fn descendants_exclude_self() {
        let page = PageTree::parse(FIG2_TOP);
        let ds = page.descendants(page.root());
        assert_eq!(ds.len(), page.len() - 1);
        assert!(!ds.contains(&page.root()));
    }

    #[test]
    fn subtree_text_concatenates() {
        let page = PageTree::parse("<h1>R</h1><h2>S</h2><p>a</p><p>b</p>");
        let s = page.children(page.root())[0];
        assert_eq!(page.subtree_text(s), "S a b");
    }

    #[test]
    fn builder_preorder_renumbering() {
        let mut b = PageTreeBuilder::new("root");
        let s1 = b.add_child(b.root(), "s1");
        let s2 = b.add_child(b.root(), "s2");
        // interleave: add to s2 first, then s1 — ids must still come out
        // pre-order
        b.add_child(s2, "s2a");
        b.add_child(s1, "s1a");
        let t = b.finish();
        let texts: Vec<&str> = t.iter().map(|id| t.text(id)).collect();
        assert_eq!(texts, ["root", "s1", "s1a", "s2", "s2a"]);
        // parent/child links consistent
        for id in t.iter() {
            for &c in t.children(id) {
                assert_eq!(t.node(c).parent, Some(id));
            }
        }
    }

    #[test]
    fn pseudo_header_paragraph_bold() {
        let page = PageTree::parse("<h1>R</h1><h2>S</h2><p><b>Sub</b></p><p>content</p>");
        let s = page.children(page.root())[0];
        let sub = page.children(s)[0];
        assert_eq!(page.text(sub), "Sub");
        assert_eq!(page.text(page.children(sub)[0]), "content");
    }

    #[test]
    fn consecutive_pseudo_headers_are_siblings() {
        let page = PageTree::parse("<h1>R</h1><h2>S</h2><b>P1</b><p>a</p><b>P2</b><p>b</p>");
        let s = page.children(page.root())[0];
        let kids: Vec<&str> = page.children(s).iter().map(|&c| page.text(c)).collect();
        assert_eq!(kids, ["P1", "P2"]);
    }

    #[test]
    fn definition_list() {
        let page =
            PageTree::parse("<h1>R</h1><h2>Info</h2><dl><dt>Email</dt><dd>x@y.edu</dd></dl>");
        let info = page.children(page.root())[0];
        // dl marks the section a list; dt/dd items become children
        assert_eq!(page.kind(info), NodeKind::List);
        assert_eq!(page.children(info).len(), 2);
    }

    #[test]
    fn outline_rendering() {
        let page = PageTree::parse("<h1>R</h1><h2>S</h2><p>x</p>");
        let o = page.to_outline();
        assert!(o.starts_with("0, none: R"));
        assert!(o.contains("  1, none: S"));
        assert!(o.contains("    2, none: x"));
    }

    #[test]
    fn divs_as_sections() {
        let page =
            PageTree::parse("<h1>R</h1><div><h2>A</h2><p>x</p></div><div><h2>B</h2><p>y</p></div>");
        let kids: Vec<&str> = page
            .children(page.root())
            .iter()
            .map(|&c| page.text(c))
            .collect();
        assert_eq!(kids, ["A", "B"]);
    }

    #[test]
    fn empty_html() {
        let page = PageTree::parse("");
        assert!(page.is_empty());
        assert_eq!(page.len(), 1);
    }
}
