//! HTML character-reference (entity) decoding.
//!
//! Supports the named entities that occur in real-world semi-structured
//! pages plus decimal / hexadecimal numeric references. Unknown references
//! are left verbatim, matching lenient browser behaviour.

/// Decodes HTML entities in `input`.
///
/// # Examples
///
/// ```
/// use webqa_html::decode_entities;
/// assert_eq!(decode_entities("Smith &amp; Jones"), "Smith & Jones");
/// assert_eq!(decode_entities("PLDI &#39;21"), "PLDI '21");
/// assert_eq!(decode_entities("&#x41;BC"), "ABC");
/// assert_eq!(decode_entities("50&nbsp;mg"), "50\u{a0}mg");
/// ```
pub fn decode_entities(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some((decoded, consumed)) = decode_one(&input[i..]) {
                out.push_str(&decoded);
                i += consumed;
                continue;
            }
        }
        // Advance one full UTF-8 character.
        let ch_len = utf8_len(bytes[i]);
        out.push_str(&input[i..i + ch_len]);
        i += ch_len;
    }
    out
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Attempts to decode a single entity at the start of `s` (which begins
/// with `&`). Returns the decoded text and the number of bytes consumed.
fn decode_one(s: &str) -> Option<(String, usize)> {
    let semi = s[1..].find(';')? + 1;
    if semi > 32 {
        return None; // unreasonably long; not an entity
    }
    let name = &s[1..semi];
    let decoded = if let Some(num) = name.strip_prefix('#') {
        let code = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            num.parse::<u32>().ok()?
        };
        char::from_u32(code)?.to_string()
    } else {
        named_entity(name)?.to_string()
    };
    Some((decoded, semi + 1))
}

/// The named entities we decode. Covers everything emitted by the corpus
/// generator plus the common set found on faculty/conference pages.
fn named_entity(name: &str) -> Option<&'static str> {
    Some(match name {
        "amp" => "&",
        "lt" => "<",
        "gt" => ">",
        "quot" => "\"",
        "apos" => "'",
        "nbsp" => "\u{a0}",
        "ndash" => "\u{2013}",
        "mdash" => "\u{2014}",
        "lsquo" => "\u{2018}",
        "rsquo" => "\u{2019}",
        "ldquo" => "\u{201c}",
        "rdquo" => "\u{201d}",
        "hellip" => "\u{2026}",
        "copy" => "\u{a9}",
        "reg" => "\u{ae}",
        "trade" => "\u{2122}",
        "bull" => "\u{2022}",
        "middot" => "\u{b7}",
        "times" => "\u{d7}",
        "deg" => "\u{b0}",
        "eacute" => "é",
        "egrave" => "è",
        "uuml" => "ü",
        "ouml" => "ö",
        "auml" => "ä",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_passthrough() {
        assert_eq!(decode_entities("hello world"), "hello world");
    }

    #[test]
    fn named_entities() {
        assert_eq!(decode_entities("&lt;b&gt;"), "<b>");
        assert_eq!(decode_entities("a &amp;&amp; b"), "a && b");
        assert_eq!(decode_entities("&ldquo;x&rdquo;"), "\u{201c}x\u{201d}");
    }

    #[test]
    fn numeric_decimal() {
        assert_eq!(decode_entities("&#65;&#66;"), "AB");
    }

    #[test]
    fn numeric_hex() {
        assert_eq!(decode_entities("&#x2019;"), "\u{2019}");
        assert_eq!(decode_entities("&#X41;"), "A");
    }

    #[test]
    fn unknown_entity_left_verbatim() {
        assert_eq!(decode_entities("&bogus; &"), "&bogus; &");
    }

    #[test]
    fn unterminated_ampersand() {
        assert_eq!(decode_entities("AT&T"), "AT&T");
        assert_eq!(decode_entities("fish & chips"), "fish & chips");
    }

    #[test]
    fn invalid_codepoint_left_verbatim() {
        assert_eq!(decode_entities("&#x110000;"), "&#x110000;");
        assert_eq!(decode_entities("&#xD800;"), "&#xD800;"); // lone surrogate
    }

    #[test]
    fn multibyte_text_with_entities() {
        assert_eq!(decode_entities("café &amp; tea"), "café & tea");
    }

    #[test]
    fn accented_names() {
        assert_eq!(decode_entities("M&uuml;ller"), "Müller");
    }
}
