//! HTML character-reference (entity) decoding.
//!
//! Supports the named entities that occur in real-world semi-structured
//! pages plus decimal / hexadecimal numeric references. Unknown references
//! are left verbatim, matching lenient browser behaviour.

/// Decodes HTML entities in `input`.
///
/// # Examples
///
/// ```
/// use webqa_html::decode_entities;
/// assert_eq!(decode_entities("Smith &amp; Jones"), "Smith & Jones");
/// assert_eq!(decode_entities("PLDI &#39;21"), "PLDI '21");
/// assert_eq!(decode_entities("&#x41;BC"), "ABC");
/// assert_eq!(decode_entities("50&nbsp;mg"), "50\u{a0}mg");
/// ```
pub fn decode_entities(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some((decoded, consumed)) = decode_one(&input[i..]) {
                out.push_str(&decoded);
                i += consumed;
                continue;
            }
        }
        // Advance one full UTF-8 character.
        let ch_len = utf8_len(bytes[i]);
        out.push_str(&input[i..i + ch_len]);
        i += ch_len;
    }
    out
}

/// Finds every character reference that *looks like* an entity
/// (`&` + `#`/alphanumerics + `;`, within the 32-byte window entities fit
/// in) but does not decode, as `(verbatim reference, byte offset of its
/// '&')` pairs in input order. [`decode_entities`] itself stays lenient
/// and leaves such references in place; this scan is the diagnostic
/// behind [`crate::HtmlError::MalformedEntity`] (strict path takes the
/// first) and the `unknown_entities` counter of
/// [`crate::ParseDiagnostics`] (lenient path counts them all).
pub(crate) fn malformed_entities(input: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'&' {
            continue;
        }
        let rest = &input[i..];
        let window_end = rest.len().min(34); // '&' + 32-byte name + ';'
                                             // Byte-level scan: a window boundary may split a multi-byte char.
        let Some(semi) = rest.as_bytes()[1..window_end]
            .iter()
            .position(|&c| c == b';')
            .map(|p| p + 1)
        else {
            continue; // no terminator nearby: a bare ampersand, not an entity
        };
        let name = &rest[1..semi];
        // Numeric references of any length count as attempts; alphabetic
        // names only from two characters up (no real entity is shorter,
        // and "AT&T;"-style prose should stay lenient).
        let looks_like_entity = (name.starts_with('#') || name.len() >= 2)
            && !name.is_empty()
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '#');
        if looks_like_entity && decode_one(&rest[..=semi]).is_none() {
            out.push((rest[..=semi].to_string(), i));
        }
    }
    out
}

/// The first malformed reference of [`malformed_entities`], if any.
#[cfg(test)]
fn first_malformed_entity(input: &str) -> Option<(String, usize)> {
    malformed_entities(input).into_iter().next()
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Attempts to decode a single entity at the start of `s` (which begins
/// with `&`). Returns the decoded text and the number of bytes consumed.
fn decode_one(s: &str) -> Option<(String, usize)> {
    let semi = s[1..].find(';')? + 1;
    if semi > 32 {
        return None; // unreasonably long; not an entity
    }
    let name = &s[1..semi];
    let decoded = if let Some(num) = name.strip_prefix('#') {
        let code = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            num.parse::<u32>().ok()?
        };
        char::from_u32(code)?.to_string()
    } else {
        named_entity(name)?.to_string()
    };
    Some((decoded, semi + 1))
}

/// The named entities we decode. Covers everything emitted by the corpus
/// generator plus the common set found on faculty/conference pages.
fn named_entity(name: &str) -> Option<&'static str> {
    Some(match name {
        "amp" => "&",
        "lt" => "<",
        "gt" => ">",
        "quot" => "\"",
        "apos" => "'",
        "nbsp" => "\u{a0}",
        "ndash" => "\u{2013}",
        "mdash" => "\u{2014}",
        "lsquo" => "\u{2018}",
        "rsquo" => "\u{2019}",
        "ldquo" => "\u{201c}",
        "rdquo" => "\u{201d}",
        "hellip" => "\u{2026}",
        "copy" => "\u{a9}",
        "reg" => "\u{ae}",
        "trade" => "\u{2122}",
        "bull" => "\u{2022}",
        "middot" => "\u{b7}",
        "times" => "\u{d7}",
        "deg" => "\u{b0}",
        "eacute" => "é",
        "egrave" => "è",
        "uuml" => "ü",
        "ouml" => "ö",
        "auml" => "ä",
        // The long tail real pages actually hit: Latin-1 letters for
        // names, currency/typography symbols, fractions, arrows, and the
        // math comparisons common in dosage / schedule tables.
        "aacute" => "á",
        "agrave" => "à",
        "acirc" => "â",
        "atilde" => "ã",
        "aring" => "å",
        "aelig" => "æ",
        "ccedil" => "ç",
        "ecirc" => "ê",
        "euml" => "ë",
        "iacute" => "í",
        "igrave" => "ì",
        "icirc" => "î",
        "iuml" => "ï",
        "ntilde" => "ñ",
        "oacute" => "ó",
        "ograve" => "ò",
        "ocirc" => "ô",
        "otilde" => "õ",
        "oslash" => "ø",
        "uacute" => "ú",
        "ugrave" => "ù",
        "ucirc" => "û",
        "yacute" => "ý",
        "szlig" => "ß",
        "euro" => "\u{20ac}",
        "pound" => "\u{a3}",
        "yen" => "\u{a5}",
        "cent" => "\u{a2}",
        "sect" => "\u{a7}",
        "para" => "\u{b6}",
        "laquo" => "\u{ab}",
        "raquo" => "\u{bb}",
        "iexcl" => "\u{a1}",
        "iquest" => "\u{bf}",
        "shy" => "\u{ad}",
        "sup1" => "\u{b9}",
        "sup2" => "\u{b2}",
        "sup3" => "\u{b3}",
        "frac12" => "\u{bd}",
        "frac14" => "\u{bc}",
        "frac34" => "\u{be}",
        "plusmn" => "\u{b1}",
        "divide" => "\u{f7}",
        "micro" => "\u{b5}",
        "dagger" => "\u{2020}",
        "Dagger" => "\u{2021}",
        "permil" => "\u{2030}",
        "prime" => "\u{2032}",
        "Prime" => "\u{2033}",
        "larr" => "\u{2190}",
        "uarr" => "\u{2191}",
        "rarr" => "\u{2192}",
        "darr" => "\u{2193}",
        "harr" => "\u{2194}",
        "minus" => "\u{2212}",
        "infin" => "\u{221e}",
        "ne" => "\u{2260}",
        "le" => "\u{2264}",
        "ge" => "\u{2265}",
        "asymp" => "\u{2248}",
        "equiv" => "\u{2261}",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_passthrough() {
        assert_eq!(decode_entities("hello world"), "hello world");
    }

    #[test]
    fn named_entities() {
        assert_eq!(decode_entities("&lt;b&gt;"), "<b>");
        assert_eq!(decode_entities("a &amp;&amp; b"), "a && b");
        assert_eq!(decode_entities("&ldquo;x&rdquo;"), "\u{201c}x\u{201d}");
    }

    #[test]
    fn numeric_decimal() {
        assert_eq!(decode_entities("&#65;&#66;"), "AB");
    }

    #[test]
    fn numeric_hex() {
        assert_eq!(decode_entities("&#x2019;"), "\u{2019}");
        assert_eq!(decode_entities("&#X41;"), "A");
    }

    #[test]
    fn unknown_entity_left_verbatim() {
        assert_eq!(decode_entities("&bogus; &"), "&bogus; &");
    }

    #[test]
    fn unterminated_ampersand() {
        assert_eq!(decode_entities("AT&T"), "AT&T");
        assert_eq!(decode_entities("fish & chips"), "fish & chips");
    }

    #[test]
    fn malformed_entity_diagnostics() {
        assert_eq!(
            first_malformed_entity("ok &amp; then &bogus; end"),
            Some(("&bogus;".to_string(), 14))
        );
        assert_eq!(
            first_malformed_entity("&#xZZ;"),
            Some(("&#xZZ;".to_string(), 0))
        );
        // Surrogate code point: numeric but undecodable.
        assert!(first_malformed_entity("&#xD800;").is_some());
        // Not entity attempts: bare ampersands, operators, far semicolons.
        assert_eq!(first_malformed_entity("AT&T; fish & chips"), None);
        assert_eq!(first_malformed_entity("a && b; c"), None);
        assert_eq!(
            first_malformed_entity("caf\u{e9} & \u{201c}quote;\u{201d}"),
            None
        );
        assert_eq!(first_malformed_entity(""), None);
    }

    #[test]
    fn invalid_codepoint_left_verbatim() {
        assert_eq!(decode_entities("&#x110000;"), "&#x110000;");
        assert_eq!(decode_entities("&#xD800;"), "&#xD800;"); // lone surrogate
    }

    #[test]
    fn multibyte_text_with_entities() {
        assert_eq!(decode_entities("café &amp; tea"), "café & tea");
    }

    #[test]
    fn accented_names() {
        assert_eq!(decode_entities("M&uuml;ller"), "Müller");
        assert_eq!(decode_entities("Fran&ccedil;ois"), "François");
        assert_eq!(decode_entities("G&ouml;del &ne; Escher"), "Gödel ≠ Escher");
        assert_eq!(decode_entities("&frac12; &euro;"), "½ €");
    }

    #[test]
    fn all_malformed_entities_are_reported_in_order() {
        assert_eq!(
            malformed_entities("a &bogus; b &amp; c &#xZZ; d"),
            vec![("&bogus;".to_string(), 2), ("&#xZZ;".to_string(), 20)]
        );
        assert!(malformed_entities("clean &amp; tidy").is_empty());
    }
}
