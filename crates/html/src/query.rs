//! XPath-style DOM queries.
//!
//! The wrapper-induction baselines (HYB, EntExtract — Section 8.1, and the
//! related work's Vertex/XPath wrappers) operate on DOM paths. This module
//! implements the XPath subset they need:
//!
//! * absolute paths: `/html/body/div/ul/li`
//! * descendant axis: `//ul/li`
//! * wildcards: `//div/*`
//! * positional predicates: `/div[2]`
//! * attribute predicates: `//div[@class='bio']`
//!
//! plus the inverse operation — computing the concrete path of a node —
//! which is what wrapper induction generalizes over.

use crate::dom::{Document, NodeId};

/// One step of a parsed path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// `true` for `//step` (descendant-or-self axis), `false` for `/step`.
    pub descendant: bool,
    /// Tag name to match; `*` matches any element.
    pub tag: String,
    /// Optional 1-based positional predicate `[n]`.
    pub position: Option<usize>,
    /// Optional attribute equality predicate `[@name='value']`.
    pub attr: Option<(String, String)>,
}

/// A parsed path expression (sequence of steps from the document root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathExpr {
    steps: Vec<Step>,
}

/// Error parsing a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid path expression: {}", self.message)
    }
}

impl std::error::Error for ParsePathError {}

impl std::str::FromStr for PathExpr {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PathExpr::parse(s)
    }
}

impl PathExpr {
    /// Parses an expression like `//div[@class='bio']/ul/li[2]`.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePathError`] on empty input, empty steps, or a
    /// malformed predicate.
    pub fn parse(s: &str) -> Result<Self, ParsePathError> {
        if s.is_empty() {
            return Err(ParsePathError {
                message: "empty expression".into(),
            });
        }
        if !s.starts_with('/') {
            return Err(ParsePathError {
                message: "expression must start with '/'".into(),
            });
        }
        let mut steps = Vec::new();
        let mut rest = s;
        while !rest.is_empty() {
            let descendant = if rest.starts_with("//") {
                rest = &rest[2..];
                true
            } else if rest.starts_with('/') {
                rest = &rest[1..];
                false
            } else {
                return Err(ParsePathError {
                    message: format!("expected '/' at …{rest}"),
                });
            };
            let end = rest.find('/').unwrap_or(rest.len());
            let step_src = &rest[..end];
            rest = &rest[end..];
            if step_src.is_empty() {
                return Err(ParsePathError {
                    message: "empty step".into(),
                });
            }
            steps.push(parse_step(step_src, descendant)?);
        }
        Ok(PathExpr { steps })
    }

    /// Constructs an expression from explicit steps. Used by wrapper
    /// induction when generalizing concrete paths.
    pub fn from_steps(steps: Vec<Step>) -> Self {
        PathExpr { steps }
    }

    /// The steps of the expression.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Evaluates the expression against a document, returning matching
    /// nodes in document order without duplicates.
    pub fn select(&self, doc: &Document) -> Vec<NodeId> {
        let mut current = vec![doc.root()];
        for step in &self.steps {
            let mut next = Vec::new();
            for &ctx in &current {
                if step.descendant {
                    for d in doc.descendants(ctx).skip(1) {
                        if step_matches(doc, d, step) {
                            next.push(d);
                        }
                    }
                } else {
                    for c in doc.child_elements(ctx) {
                        if step_matches(doc, c, step) {
                            next.push(c);
                        }
                    }
                }
            }
            next.sort();
            next.dedup();
            current = next;
            if current.is_empty() {
                break;
            }
        }
        current
    }
}

impl std::fmt::Display for PathExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for step in &self.steps {
            write!(
                f,
                "{}{}",
                if step.descendant { "//" } else { "/" },
                step.tag
            )?;
            if let Some((name, value)) = &step.attr {
                write!(f, "[@{name}='{value}']")?;
            }
            if let Some(p) = step.position {
                write!(f, "[{p}]")?;
            }
        }
        Ok(())
    }
}

fn parse_step(src: &str, descendant: bool) -> Result<Step, ParsePathError> {
    let (name_part, preds) = match src.find('[') {
        Some(i) => (&src[..i], &src[i..]),
        None => (src, ""),
    };
    if name_part.is_empty() {
        return Err(ParsePathError {
            message: format!("missing tag in step {src:?}"),
        });
    }
    let mut step = Step {
        descendant,
        tag: name_part.to_ascii_lowercase(),
        position: None,
        attr: None,
    };
    let mut rest = preds;
    while !rest.is_empty() {
        if !rest.starts_with('[') {
            return Err(ParsePathError {
                message: format!("expected '[' in {src:?}"),
            });
        }
        let close = rest.find(']').ok_or_else(|| ParsePathError {
            message: format!("unclosed predicate in {src:?}"),
        })?;
        let body = &rest[1..close];
        rest = &rest[close + 1..];
        if let Some(attr_body) = body.strip_prefix('@') {
            let eq = attr_body.find('=').ok_or_else(|| ParsePathError {
                message: format!("attribute predicate needs '=' in {src:?}"),
            })?;
            let name = attr_body[..eq].to_ascii_lowercase();
            let raw = &attr_body[eq + 1..];
            let value = raw.trim_matches(|c| c == '\'' || c == '"').to_string();
            step.attr = Some((name, value));
        } else {
            let pos: usize = body.parse().map_err(|_| ParsePathError {
                message: format!("bad positional predicate {body:?}"),
            })?;
            if pos == 0 {
                return Err(ParsePathError {
                    message: "positions are 1-based".into(),
                });
            }
            step.position = Some(pos);
        }
    }
    Ok(step)
}

fn step_matches(doc: &Document, id: NodeId, step: &Step) -> bool {
    let Some(tag) = doc.tag(id) else { return false };
    if step.tag != "*" && step.tag != tag {
        return false;
    }
    if let Some((name, value)) = &step.attr {
        match doc.attr(id, name) {
            Some(v) if v == value => {}
            // Class predicates match any whitespace-separated token, like
            // CSS class selectors.
            Some(v) if name == "class" && v.split_whitespace().any(|t| t == value) => {}
            _ => return false,
        }
    }
    if let Some(p) = step.position {
        if doc.sibling_position(id) != Some(p) {
            return false;
        }
    }
    true
}

/// Computes the concrete absolute path of `id`: every step has a tag and a
/// positional predicate, e.g. `/html[1]/body[1]/div[2]/ul[1]/li[3]`.
///
/// Returns `None` for text nodes and the synthetic root.
pub fn concrete_path(doc: &Document, id: NodeId) -> Option<PathExpr> {
    doc.tag(id)?;
    let mut steps = Vec::new();
    let mut cur = id;
    loop {
        let tag = doc.tag(cur)?.to_string();
        let pos = doc.sibling_position(cur)?;
        steps.push(Step {
            descendant: false,
            tag,
            position: Some(pos),
            attr: None,
        });
        match doc.node(cur).parent {
            Some(p) if doc.tag(p).is_some() => cur = p,
            _ => break,
        }
    }
    steps.reverse();
    Some(PathExpr { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_html;

    const DOC: &str = r#"
<html><body>
  <div class="bio intro"><p>Jane Doe is a professor.</p></div>
  <div class="content">
    <ul><li>a</li><li>b</li><li>c</li></ul>
    <ul><li>x</li></ul>
  </div>
</body></html>"#;

    fn texts(doc: &Document, ids: &[NodeId]) -> Vec<String> {
        ids.iter().map(|&i| doc.text_content(i)).collect()
    }

    #[test]
    fn absolute_path() {
        let doc = parse_html(DOC);
        let expr: PathExpr = "/html/body/div/ul/li".parse().unwrap();
        let hits = expr.select(&doc);
        assert_eq!(texts(&doc, &hits), ["a", "b", "c", "x"]);
    }

    #[test]
    fn descendant_axis() {
        let doc = parse_html(DOC);
        let expr: PathExpr = "//li".parse().unwrap();
        assert_eq!(expr.select(&doc).len(), 4);
    }

    #[test]
    fn positional_predicate() {
        let doc = parse_html(DOC);
        let expr: PathExpr = "//ul[1]/li[2]".parse().unwrap();
        assert_eq!(texts(&doc, &expr.select(&doc)), ["b"]);
    }

    #[test]
    fn attribute_predicate_exact_and_class_token() {
        let doc = parse_html(DOC);
        let exact: PathExpr = "//div[@class='content']".parse().unwrap();
        assert_eq!(exact.select(&doc).len(), 1);
        // class token match
        let token: PathExpr = "//div[@class='bio']".parse().unwrap();
        assert_eq!(token.select(&doc).len(), 1);
    }

    #[test]
    fn wildcard_step() {
        let doc = parse_html(DOC);
        let expr: PathExpr = "/html/body/*".parse().unwrap();
        assert_eq!(expr.select(&doc).len(), 2);
    }

    #[test]
    fn no_match_is_empty() {
        let doc = parse_html(DOC);
        let expr: PathExpr = "//table".parse().unwrap();
        assert!(expr.select(&doc).is_empty());
    }

    #[test]
    fn concrete_path_roundtrip() {
        let doc = parse_html(DOC);
        for id in doc.iter() {
            let Some(path) = concrete_path(&doc, id) else {
                continue;
            };
            let hits = path.select(&doc);
            assert_eq!(hits, vec![id], "path {path} must select exactly its node");
        }
    }

    #[test]
    fn display_roundtrip() {
        let src = "//div[@class='bio']/ul/li[2]";
        let expr: PathExpr = src.parse().unwrap();
        assert_eq!(expr.to_string(), src);
        let again: PathExpr = expr.to_string().parse().unwrap();
        assert_eq!(expr, again);
    }

    #[test]
    fn parse_errors() {
        assert!(PathExpr::parse("").is_err());
        assert!(PathExpr::parse("div/p").is_err());
        assert!(PathExpr::parse("/div[").is_err());
        assert!(PathExpr::parse("/div[0]").is_err());
        assert!(PathExpr::parse("/div[@class]").is_err());
        assert!(PathExpr::parse("//").is_err());
    }

    #[test]
    fn deduplicates_descendant_hits() {
        // //div//li could reach the same li via nested divs.
        let doc = parse_html("<div><div><ul><li>x</li></ul></div></div>");
        let expr: PathExpr = "//div//li".parse().unwrap();
        assert_eq!(expr.select(&doc).len(), 1);
    }
}
