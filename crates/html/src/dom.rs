//! Arena-based DOM tree.
//!
//! Nodes live in a flat `Vec` inside [`Document`] and refer to each other
//! through [`NodeId`] indices, the standard arena idiom for trees in Rust.
//! The DOM is the input both to the page-tree conversion (Definition 3.1)
//! and to the XPath-style queries used by the wrapper-induction baselines.

use crate::tokenizer::Attribute;

/// Index of a node inside a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index. Exposed for diagnostics and stable ordering.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Payload of a DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeData {
    /// An element such as `<div>`.
    Element {
        /// Lowercased tag name.
        tag: String,
        /// Attributes in source order.
        attrs: Vec<Attribute>,
    },
    /// A text node.
    Text(String),
    /// The synthetic document root (parent of `<html>`).
    Document,
}

/// One DOM node: payload plus tree links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The node payload.
    pub data: NodeData,
    /// Parent node, `None` for the document root.
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
}

/// A parsed HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// Creates a document containing only the synthetic root.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                data: NodeData::Document,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// The synthetic document root.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this document.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Number of nodes including the synthetic root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document contains only the synthetic root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Appends a new node under `parent` and returns its id.
    /// Appends an element node under `parent` and returns its id.
    pub fn append_element(&mut self, parent: NodeId, tag: &str, attrs: Vec<Attribute>) -> NodeId {
        self.append(
            parent,
            NodeData::Element {
                tag: tag.to_ascii_lowercase(),
                attrs,
            },
        )
    }

    /// Appends a text node under `parent` and returns its id.
    pub fn append_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        self.append(parent, NodeData::Text(text.to_string()))
    }

    /// Replaces the content of an existing text node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a text node.
    pub(crate) fn replace_text(&mut self, id: NodeId, text: String) {
        match &mut self.nodes[id.0].data {
            NodeData::Text(t) => *t = text,
            other => panic!("replace_text on a non-text node: {other:?}"),
        }
    }

    pub(crate) fn append(&mut self, parent: NodeId, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            data,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Iterates over all node ids in document (pre-)order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        // Arena insertion order *is* pre-order for the builder we use, but
        // walk explicitly to stay correct under any construction order.
        DescendantIter {
            doc: self,
            stack: vec![self.root()],
        }
    }

    /// Iterates the subtree rooted at `id` (including `id`) in pre-order.
    pub fn descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        DescendantIter {
            doc: self,
            stack: vec![id],
        }
    }

    /// The element tag of `id`, if it is an element.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Element { tag, .. } => Some(tag),
            _ => None,
        }
    }

    /// The value of attribute `name` on element `id`, if present.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Element { attrs, .. } => attrs
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.value.as_str()),
            _ => None,
        }
    }

    /// Concatenated, whitespace-normalized text of the subtree at `id`.
    ///
    /// Block-level element boundaries introduce a single space so that
    /// `<li>A</li><li>B</li>` reads "A B" rather than "AB".
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        normalize_ws(&out)
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.node(id).data {
            NodeData::Text(t) => out.push_str(t),
            NodeData::Element { tag, .. } => {
                if is_block(tag) && !out.is_empty() {
                    out.push(' ');
                }
                for &c in &self.node(id).children {
                    self.collect_text(c, out);
                }
                if is_block(tag) {
                    out.push(' ');
                }
            }
            NodeData::Document => {
                for &c in &self.node(id).children {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Child elements (skipping text nodes) of `id`.
    pub fn child_elements(&self, id: NodeId) -> Vec<NodeId> {
        self.node(id)
            .children
            .iter()
            .copied()
            .filter(|&c| matches!(self.node(c).data, NodeData::Element { .. }))
            .collect()
    }

    /// Position of `id` among its parent's children with the same tag
    /// (1-based, as in XPath `tag[n]`). `None` for non-elements or root.
    pub fn sibling_position(&self, id: NodeId) -> Option<usize> {
        let tag = self.tag(id)?;
        let parent = self.node(id).parent?;
        let mut pos = 0;
        for &sib in &self.node(parent).children {
            if self.tag(sib) == Some(tag) {
                pos += 1;
                if sib == id {
                    return Some(pos);
                }
            }
        }
        None
    }
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

struct DescendantIter<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for DescendantIter<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        // Push children reversed so iteration is pre-order left-to-right.
        for &c in self.doc.node(id).children.iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

/// Collapses runs of whitespace to single spaces and trims the ends.
pub(crate) fn normalize_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_ws = true; // leading whitespace dropped
    for c in s.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Whether `tag` is a block-level element for text extraction purposes.
pub(crate) fn is_block(tag: &str) -> bool {
    matches!(
        tag,
        "address"
            | "article"
            | "aside"
            | "blockquote"
            | "br"
            | "dd"
            | "div"
            | "dl"
            | "dt"
            | "fieldset"
            | "figcaption"
            | "figure"
            | "footer"
            | "form"
            | "h1"
            | "h2"
            | "h3"
            | "h4"
            | "h5"
            | "h6"
            | "header"
            | "hr"
            | "li"
            | "main"
            | "nav"
            | "ol"
            | "p"
            | "pre"
            | "section"
            | "table"
            | "tbody"
            | "td"
            | "tfoot"
            | "th"
            | "thead"
            | "tr"
            | "ul"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_html;

    #[test]
    fn text_content_normalizes_whitespace() {
        let doc = parse_html("<p>  a   b </p>");
        assert_eq!(doc.text_content(doc.root()), "a b");
    }

    #[test]
    fn block_boundaries_insert_spaces() {
        let doc = parse_html("<ul><li>A</li><li>B</li></ul>");
        assert_eq!(doc.text_content(doc.root()), "A B");
    }

    #[test]
    fn inline_elements_do_not_split_words() {
        let doc = parse_html("<p>we<b>b</b>qa</p>");
        assert_eq!(doc.text_content(doc.root()), "webqa");
    }

    #[test]
    fn attr_lookup() {
        let doc = parse_html(r#"<div id="x" class="y z">t</div>"#);
        let div = doc
            .iter()
            .find(|&n| doc.tag(n) == Some("div"))
            .expect("div present");
        assert_eq!(doc.attr(div, "id"), Some("x"));
        assert_eq!(doc.attr(div, "class"), Some("y z"));
        assert_eq!(doc.attr(div, "missing"), None);
    }

    #[test]
    fn sibling_position_counts_same_tag_only() {
        let doc = parse_html("<div><p>a</p><span>s</span><p>b</p></div>");
        let ps: Vec<NodeId> = doc.iter().filter(|&n| doc.tag(n) == Some("p")).collect();
        assert_eq!(doc.sibling_position(ps[0]), Some(1));
        assert_eq!(doc.sibling_position(ps[1]), Some(2));
    }

    #[test]
    fn preorder_iteration_visits_all() {
        let doc = parse_html("<div><p>a</p><p>b</p></div>");
        let n = doc.iter().count();
        assert_eq!(n, doc.len());
    }

    #[test]
    fn empty_document() {
        let doc = Document::new();
        assert!(doc.is_empty());
        assert_eq!(doc.text_content(doc.root()), "");
    }

    #[test]
    fn normalize_ws_edge_cases() {
        assert_eq!(normalize_ws(""), "");
        assert_eq!(normalize_ws("   "), "");
        assert_eq!(normalize_ws("\n\ta  b\n"), "a b");
    }
}
