//! HTML tokenizer.
//!
//! A lenient, from-scratch tokenizer in the spirit of the WHATWG
//! tokenization stage, covering the constructs that appear on
//! semi-structured faculty / conference / class / clinic pages: start and
//! end tags with attributes, self-closing tags, comments, doctype, raw-text
//! elements (`script`, `style`), and character data. Malformed markup never
//! panics — the tokenizer recovers the way browsers do (e.g. a stray `<`
//! becomes text).

use crate::entities::{decode_entities, first_malformed_entity};

/// One attribute on a start tag, already entity-decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, lowercased.
    pub name: String,
    /// Attribute value; empty for bare attributes like `disabled`.
    pub value: String,
}

/// A lexical token of the HTML input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmlToken {
    /// `<tag attr="v">`; `self_closing` is true for `<br/>`-style tags.
    StartTag {
        /// Tag name, lowercased.
        name: String,
        /// Attributes in source order.
        attrs: Vec<Attribute>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</tag>`.
    EndTag {
        /// Tag name, lowercased.
        name: String,
    },
    /// Character data between tags, entity-decoded. Whitespace preserved.
    Text(String),
    /// `<!-- ... -->`; content kept for completeness.
    Comment(String),
    /// `<!DOCTYPE ...>`.
    Doctype(String),
}

/// Tokenizes an HTML document.
///
/// # Examples
///
/// ```
/// use webqa_html::{tokenize_html, HtmlToken};
/// let toks = tokenize_html("<p class=\"x\">hi</p>");
/// assert_eq!(toks.len(), 3);
/// assert!(matches!(&toks[1], HtmlToken::Text(t) if t == "hi"));
/// ```
pub fn tokenize_html(input: &str) -> Vec<HtmlToken> {
    Tokenizer::new(input, false).run().0
}

/// Tokenizes like [`tokenize_html`], additionally reporting the first
/// malformed `&…;` reference found in content that is actually
/// entity-decoded — text runs and attribute values. References inside
/// comments, doctype, and `<script>`/`<style>` raw text are never decoded
/// and therefore never reported. Returns the verbatim reference and the
/// byte offset of its `&` in `input`.
pub(crate) fn tokenize_html_checked(input: &str) -> (Vec<HtmlToken>, Option<(String, usize)>) {
    Tokenizer::new(input, true).run()
}

struct Tokenizer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<HtmlToken>,
    /// Whether decoded content is scanned for malformed entities.
    check_entities: bool,
    /// First malformed reference seen in decoded content, with its
    /// absolute byte offset.
    malformed: Option<(String, usize)>,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str, check_entities: bool) -> Self {
        Tokenizer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
            check_entities,
            malformed: None,
        }
    }

    /// Records the first malformed entity of a raw slice about to be
    /// decoded; `start` is the slice's byte offset in the input.
    fn note_malformed(&mut self, raw: &str, start: usize) {
        if self.check_entities && self.malformed.is_none() {
            if let Some((entity, off)) = first_malformed_entity(raw) {
                self.malformed = Some((entity, start + off));
            }
        }
    }

    fn run(mut self) -> (Vec<HtmlToken>, Option<(String, usize)>) {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' {
                if self.starts_with("<!--") {
                    self.consume_comment();
                } else if self.starts_with_ci("<!doctype") {
                    self.consume_doctype();
                } else if self.peek_at(1) == Some(b'/') {
                    self.consume_end_tag();
                } else if self.peek_at(1).is_some_and(|c| c.is_ascii_alphabetic()) {
                    self.consume_start_tag();
                } else {
                    // Stray '<': emit as text and move on.
                    self.consume_text_from(self.pos + 1, "<");
                }
            } else {
                self.consume_text();
            }
        }
        (self.tokens, self.malformed)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn starts_with_ci(&self, s: &str) -> bool {
        // Byte-level comparison: a `&str` slice at pos + s.len() could
        // split a multi-byte character and panic.
        let end = self.pos + s.len();
        end <= self.bytes.len() && self.bytes[self.pos..end].eq_ignore_ascii_case(s.as_bytes())
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn consume_text(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        if !raw.is_empty() {
            self.note_malformed(raw, start);
            self.tokens.push(HtmlToken::Text(decode_entities(raw)));
        }
    }

    /// Emits `prefix` as text and continues scanning from `resume`.
    fn consume_text_from(&mut self, resume: usize, prefix: &str) {
        self.pos = resume;
        match self.tokens.last_mut() {
            Some(HtmlToken::Text(t)) => t.push_str(prefix),
            _ => self.tokens.push(HtmlToken::Text(prefix.to_string())),
        }
    }

    fn consume_comment(&mut self) {
        let start = self.pos + 4;
        match self.input[start..].find("-->") {
            Some(end) => {
                self.tokens.push(HtmlToken::Comment(
                    self.input[start..start + end].to_string(),
                ));
                self.pos = start + end + 3;
            }
            None => {
                // Unterminated comment swallows the rest of the input.
                self.tokens
                    .push(HtmlToken::Comment(self.input[start..].to_string()));
                self.pos = self.bytes.len();
            }
        }
    }

    fn consume_doctype(&mut self) {
        let start = self.pos + 2;
        match self.input[start..].find('>') {
            Some(end) => {
                self.tokens.push(HtmlToken::Doctype(
                    self.input[start..start + end].to_string(),
                ));
                self.pos = start + end + 1;
            }
            None => {
                self.tokens
                    .push(HtmlToken::Doctype(self.input[start..].to_string()));
                self.pos = self.bytes.len();
            }
        }
    }

    fn consume_end_tag(&mut self) {
        // self.pos at '<', pos+1 at '/'
        let mut i = self.pos + 2;
        let name_start = i;
        while i < self.bytes.len()
            && (self.bytes[i].is_ascii_alphanumeric() || self.bytes[i] == b'-')
        {
            i += 1;
        }
        let name = self.input[name_start..i].to_ascii_lowercase();
        // Skip to '>'.
        while i < self.bytes.len() && self.bytes[i] != b'>' {
            i += 1;
        }
        self.pos = (i + 1).min(self.bytes.len());
        if !name.is_empty() {
            self.tokens.push(HtmlToken::EndTag { name });
        }
    }

    fn consume_start_tag(&mut self) {
        let mut i = self.pos + 1;
        let name_start = i;
        while i < self.bytes.len()
            && (self.bytes[i].is_ascii_alphanumeric() || self.bytes[i] == b'-')
        {
            i += 1;
        }
        let name = self.input[name_start..i].to_ascii_lowercase();
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            // Skip whitespace.
            while i < self.bytes.len() && self.bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= self.bytes.len() {
                break;
            }
            match self.bytes[i] {
                b'>' => {
                    i += 1;
                    break;
                }
                b'/' => {
                    self_closing = true;
                    i += 1;
                }
                _ => {
                    let (attr, next) = self.consume_attribute(i);
                    if let Some(a) = attr {
                        attrs.push(a);
                    }
                    if next == i {
                        // No progress (malformed); skip a byte to avoid looping.
                        i += 1;
                    } else {
                        i = next;
                    }
                }
            }
        }
        self.pos = i;
        let is_raw_text = name == "script" || name == "style";
        self.tokens.push(HtmlToken::StartTag {
            name: name.clone(),
            attrs,
            self_closing,
        });
        if is_raw_text && !self_closing {
            self.consume_raw_text(&name);
        }
    }

    /// Raw-text content of `<script>`/`<style>`: everything up to the
    /// matching close tag, emitted as a single text token (the DOM builder
    /// discards it, but round-tripping keeps it for fidelity).
    fn consume_raw_text(&mut self, tag: &str) {
        let close = format!("</{tag}");
        let rest = &self.input[self.pos..];
        let lower = rest.to_ascii_lowercase();
        match lower.find(&close) {
            Some(end) => {
                if end > 0 {
                    self.tokens.push(HtmlToken::Text(rest[..end].to_string()));
                }
                self.pos += end;
            }
            None => {
                if !rest.is_empty() {
                    self.tokens.push(HtmlToken::Text(rest.to_string()));
                }
                self.pos = self.bytes.len();
            }
        }
    }

    /// Parses one `name`, `name=value`, `name="value"`, or `name='value'`
    /// attribute starting at byte `i`. Returns the attribute (if a name was
    /// found) and the next position.
    fn consume_attribute(&mut self, mut i: usize) -> (Option<Attribute>, usize) {
        let name_start = i;
        while i < self.bytes.len()
            && !self.bytes[i].is_ascii_whitespace()
            && !matches!(self.bytes[i], b'=' | b'>' | b'/')
        {
            i += 1;
        }
        if i == name_start {
            return (None, i);
        }
        let name = self.input[name_start..i].to_ascii_lowercase();
        // Skip whitespace before '='.
        let mut j = i;
        while j < self.bytes.len() && self.bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= self.bytes.len() || self.bytes[j] != b'=' {
            return (
                Some(Attribute {
                    name,
                    value: String::new(),
                }),
                i,
            );
        }
        j += 1;
        while j < self.bytes.len() && self.bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= self.bytes.len() {
            return (
                Some(Attribute {
                    name,
                    value: String::new(),
                }),
                j,
            );
        }
        let (value, vstart, next) = match self.bytes[j] {
            q @ (b'"' | b'\'') => {
                let vstart = j + 1;
                let mut k = vstart;
                while k < self.bytes.len() && self.bytes[k] != q {
                    k += 1;
                }
                (
                    self.input[vstart..k].to_string(),
                    vstart,
                    (k + 1).min(self.bytes.len()),
                )
            }
            _ => {
                let vstart = j;
                let mut k = vstart;
                while k < self.bytes.len()
                    && !self.bytes[k].is_ascii_whitespace()
                    && self.bytes[k] != b'>'
                {
                    k += 1;
                }
                (self.input[vstart..k].to_string(), vstart, k)
            }
        };
        self.note_malformed(&value, vstart);
        (
            Some(Attribute {
                name,
                value: decode_entities(&value),
            }),
            next,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(tokens: &[HtmlToken], i: usize) -> (&str, &[Attribute], bool) {
        match &tokens[i] {
            HtmlToken::StartTag {
                name,
                attrs,
                self_closing,
            } => (name, attrs, *self_closing),
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn simple_document() {
        let toks = tokenize_html("<html><body><p>hi</p></body></html>");
        assert_eq!(toks.len(), 7);
        assert_eq!(start(&toks, 0).0, "html");
        assert!(matches!(&toks[3], HtmlToken::Text(t) if t == "hi"));
        assert!(matches!(&toks[4], HtmlToken::EndTag { name } if name == "p"));
    }

    #[test]
    fn attributes_quoted_and_bare() {
        let toks = tokenize_html(r#"<a href="x.html" class='big' id=main disabled>"#);
        let (name, attrs, sc) = start(&toks, 0);
        assert_eq!(name, "a");
        assert!(!sc);
        assert_eq!(attrs.len(), 4);
        assert_eq!(
            attrs[0],
            Attribute {
                name: "href".into(),
                value: "x.html".into()
            }
        );
        assert_eq!(attrs[1].value, "big");
        assert_eq!(attrs[2].value, "main");
        assert_eq!(
            attrs[3],
            Attribute {
                name: "disabled".into(),
                value: String::new()
            }
        );
    }

    #[test]
    fn self_closing_tag() {
        let toks = tokenize_html("<br/><hr />");
        assert!(start(&toks, 0).2);
        assert!(start(&toks, 1).2);
    }

    #[test]
    fn uppercase_tags_lowercased() {
        let toks = tokenize_html("<DIV CLASS=Big>x</DIV>");
        let (name, attrs, _) = start(&toks, 0);
        assert_eq!(name, "div");
        assert_eq!(attrs[0].name, "class");
        assert_eq!(attrs[0].value, "Big"); // values keep case
        assert!(matches!(&toks[2], HtmlToken::EndTag { name } if name == "div"));
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize_html("<!DOCTYPE html><!-- note --><p>x</p>");
        assert!(matches!(&toks[0], HtmlToken::Doctype(_)));
        assert!(matches!(&toks[1], HtmlToken::Comment(c) if c == " note "));
    }

    #[test]
    fn entities_in_text_decoded() {
        let toks = tokenize_html("<p>Smith &amp; Jones</p>");
        assert!(matches!(&toks[1], HtmlToken::Text(t) if t == "Smith & Jones"));
    }

    #[test]
    fn entities_in_attr_values_decoded() {
        let toks = tokenize_html(r#"<a title="A &amp; B">x</a>"#);
        let (_, attrs, _) = start(&toks, 0);
        assert_eq!(attrs[0].value, "A & B");
    }

    #[test]
    fn script_content_is_raw_text() {
        let toks = tokenize_html("<script>if (a < b) { x(); }</script><p>y</p>");
        assert!(matches!(&toks[1], HtmlToken::Text(t) if t.contains("a < b")));
        assert!(matches!(&toks[2], HtmlToken::EndTag { name } if name == "script"));
    }

    #[test]
    fn stray_less_than_is_text() {
        let toks = tokenize_html("a < b");
        // "a " then "<" merged then " b" -> the tokenizer merges into text tokens
        let text: String = toks
            .iter()
            .map(|t| match t {
                HtmlToken::Text(s) => s.clone(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(text, "a < b");
    }

    #[test]
    fn unterminated_comment_does_not_panic() {
        let toks = tokenize_html("<!-- never closed <p>x</p>");
        assert_eq!(toks.len(), 1);
        assert!(matches!(&toks[0], HtmlToken::Comment(_)));
    }

    #[test]
    fn unterminated_tag_does_not_panic() {
        let toks = tokenize_html("<p class=");
        assert_eq!(start(&toks, 0).0, "p");
    }

    #[test]
    fn empty_input() {
        assert!(tokenize_html("").is_empty());
    }

    #[test]
    fn whitespace_preserved_in_text() {
        let toks = tokenize_html("<p>  two  spaces  </p>");
        assert!(matches!(&toks[1], HtmlToken::Text(t) if t == "  two  spaces  "));
    }

    #[test]
    fn end_tag_with_junk_after_name() {
        let toks = tokenize_html("<p>x</p junk>");
        assert!(matches!(toks.last().unwrap(), HtmlToken::EndTag { name } if name == "p"));
    }
}
