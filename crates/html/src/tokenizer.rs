//! HTML tokenizer.
//!
//! A lenient, from-scratch tokenizer in the spirit of the WHATWG
//! tokenization stage, covering the constructs that appear on
//! semi-structured faculty / conference / class / clinic pages *and* the
//! real-world markup the conformance corpus (`tests/fixtures/html5/`)
//! tortures it with: start and end tags with attributes, self-closing
//! tags, comments, doctype, raw-text elements (`script`, `style` verbatim;
//! `textarea` escapable — its character references decode), and character
//! data. Malformed markup never panics — the tokenizer recovers the way
//! browsers do (e.g. a stray `<` becomes text).
//!
//! Input normalization, per the byte-stream preprocessing real pages
//! need: a leading U+FEFF byte-order mark is dropped, `\r\n` / `\r`
//! newlines normalize to `\n`, and U+0000 in decoded content becomes
//! U+FFFD (the replacement character).

use crate::entities::{decode_entities, malformed_entities};

/// One attribute on a start tag, already entity-decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, lowercased.
    pub name: String,
    /// Attribute value; empty for bare attributes like `disabled`.
    pub value: String,
}

/// A lexical token of the HTML input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmlToken {
    /// `<tag attr="v">`; `self_closing` is true for `<br/>`-style tags.
    StartTag {
        /// Tag name, lowercased.
        name: String,
        /// Attributes in source order.
        attrs: Vec<Attribute>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</tag>`.
    EndTag {
        /// Tag name, lowercased.
        name: String,
    },
    /// Character data between tags, entity-decoded. Whitespace preserved.
    Text(String),
    /// `<!-- ... -->`; content kept for completeness.
    Comment(String),
    /// `<!DOCTYPE ...>`.
    Doctype(String),
}

/// Tokenizes an HTML document.
///
/// # Examples
///
/// ```
/// use webqa_html::{tokenize_html, HtmlToken};
/// let toks = tokenize_html("<p class=\"x\">hi</p>");
/// assert_eq!(toks.len(), 3);
/// assert!(matches!(&toks[1], HtmlToken::Text(t) if t == "hi"));
/// ```
pub fn tokenize_html(input: &str) -> Vec<HtmlToken> {
    tokenize_stream(input).tokens
}

/// The full tokenizer output: tokens, their source positions, and entity
/// diagnostics — everything the strict *and* lenient tree builders need
/// from one pass.
pub(crate) struct TokenStream {
    /// The tokens, in input order.
    pub(crate) tokens: Vec<HtmlToken>,
    /// Byte offset in the input where each token starts, aligned with
    /// `tokens` (a merged text run keeps its first fragment's offset).
    pub(crate) offsets: Vec<usize>,
    /// First malformed `&…;` reference found in content that is actually
    /// entity-decoded — text runs, attribute values, and `<textarea>` raw
    /// text. References inside comments, doctype, and `<script>`/`<style>`
    /// raw text are never decoded and therefore never reported. Holds the
    /// verbatim reference and the byte offset of its `&` in the input.
    pub(crate) malformed: Option<(String, usize)>,
    /// Total count of such undecodable references — the lenient path's
    /// `unknown_entities` diagnostic.
    pub(crate) unknown_entities: usize,
}

/// Tokenizes like [`tokenize_html`], returning the full [`TokenStream`].
pub(crate) fn tokenize_stream(input: &str) -> TokenStream {
    // A leading byte-order mark is an encoding artifact, not content; it
    // must not become a text node (or an offset skew).
    let input = input.strip_prefix('\u{feff}').unwrap_or(input);
    Tokenizer::new(input).run()
}

/// Normalizes decoded content: `\r\n` / `\r` → `\n`, U+0000 → U+FFFD.
fn normalize_content(s: &str) -> String {
    if !s.contains('\r') && !s.contains('\0') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                out.push('\n');
            }
            '\0' => out.push('\u{fffd}'),
            other => out.push(other),
        }
    }
    out
}

struct Tokenizer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<HtmlToken>,
    offsets: Vec<usize>,
    malformed: Option<(String, usize)>,
    unknown_entities: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Tokenizer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
            offsets: Vec::new(),
            malformed: None,
            unknown_entities: 0,
        }
    }

    /// Appends a token, recording its source offset.
    fn emit(&mut self, token: HtmlToken, offset: usize) {
        self.tokens.push(token);
        self.offsets.push(offset);
    }

    /// Records the malformed entities of a raw slice about to be decoded;
    /// `start` is the slice's byte offset in the input.
    fn note_malformed(&mut self, raw: &str, start: usize) {
        if !raw.contains('&') {
            return;
        }
        let found = malformed_entities(raw);
        self.unknown_entities += found.len();
        if self.malformed.is_none() {
            if let Some((entity, off)) = found.into_iter().next() {
                self.malformed = Some((entity, start + off));
            }
        }
    }

    fn run(mut self) -> TokenStream {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' {
                if self.starts_with("<!--") {
                    self.consume_comment();
                } else if self.starts_with_ci("<!doctype") {
                    self.consume_doctype();
                } else if matches!(self.peek_at(1), Some(b'!' | b'?')) {
                    self.consume_bogus_comment();
                } else if self.peek_at(1) == Some(b'/') {
                    self.consume_end_tag();
                } else if self.peek_at(1).is_some_and(|c| c.is_ascii_alphabetic()) {
                    self.consume_start_tag();
                } else {
                    // Stray '<': emit as text and move on.
                    self.consume_text_from(self.pos + 1, "<");
                }
            } else {
                self.consume_text();
            }
        }
        TokenStream {
            tokens: self.tokens,
            offsets: self.offsets,
            malformed: self.malformed,
            unknown_entities: self.unknown_entities,
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn starts_with_ci(&self, s: &str) -> bool {
        // Byte-level comparison: a `&str` slice at pos + s.len() could
        // split a multi-byte character and panic.
        let end = self.pos + s.len();
        end <= self.bytes.len() && self.bytes[self.pos..end].eq_ignore_ascii_case(s.as_bytes())
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn consume_text(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        if !raw.is_empty() {
            self.note_malformed(raw, start);
            let text = normalize_content(&decode_entities(raw));
            self.push_text(text, start);
        }
    }

    /// Appends text, merging into a directly preceding text token (the
    /// offset of the merged run stays the first fragment's).
    fn push_text(&mut self, text: String, offset: usize) {
        match self.tokens.last_mut() {
            Some(HtmlToken::Text(t)) => t.push_str(&text),
            _ => self.emit(HtmlToken::Text(text), offset),
        }
    }

    /// Emits `prefix` as text and continues scanning from `resume`.
    fn consume_text_from(&mut self, resume: usize, prefix: &str) {
        let offset = self.pos;
        self.pos = resume;
        self.push_text(prefix.to_string(), offset);
    }

    fn consume_comment(&mut self) {
        let offset = self.pos;
        let start = self.pos + 4;
        match self.input[start..].find("-->") {
            Some(end) => {
                self.emit(
                    HtmlToken::Comment(self.input[start..start + end].to_string()),
                    offset,
                );
                self.pos = start + end + 3;
            }
            None => {
                // Unterminated comment swallows the rest of the input.
                self.emit(HtmlToken::Comment(self.input[start..].to_string()), offset);
                self.pos = self.bytes.len();
            }
        }
    }

    /// `<!` or `<?` markup that is neither a comment nor a doctype —
    /// CDATA sections, processing instructions, broken declarations.
    /// Everything up to the next `>` becomes a bogus comment, as in the
    /// WHATWG tokenizer, so none of it leaks into the tree as text.
    fn consume_bogus_comment(&mut self) {
        let offset = self.pos;
        let start = self.pos + 2;
        match self.input[start..].find('>') {
            Some(end) => {
                self.emit(
                    HtmlToken::Comment(self.input[start..start + end].to_string()),
                    offset,
                );
                self.pos = start + end + 1;
            }
            None => {
                self.emit(HtmlToken::Comment(self.input[start..].to_string()), offset);
                self.pos = self.bytes.len();
            }
        }
    }

    fn consume_doctype(&mut self) {
        let offset = self.pos;
        let start = self.pos + 2;
        match self.input[start..].find('>') {
            Some(end) => {
                self.emit(
                    HtmlToken::Doctype(self.input[start..start + end].to_string()),
                    offset,
                );
                self.pos = start + end + 1;
            }
            None => {
                self.emit(HtmlToken::Doctype(self.input[start..].to_string()), offset);
                self.pos = self.bytes.len();
            }
        }
    }

    fn consume_end_tag(&mut self) {
        // self.pos at '<', pos+1 at '/'
        let offset = self.pos;
        let mut i = self.pos + 2;
        let name_start = i;
        while i < self.bytes.len()
            && (self.bytes[i].is_ascii_alphanumeric() || self.bytes[i] == b'-')
        {
            i += 1;
        }
        let name = self.input[name_start..i].to_ascii_lowercase();
        // Skip to '>'.
        while i < self.bytes.len() && self.bytes[i] != b'>' {
            i += 1;
        }
        self.pos = (i + 1).min(self.bytes.len());
        if !name.is_empty() {
            self.emit(HtmlToken::EndTag { name }, offset);
        }
    }

    fn consume_start_tag(&mut self) {
        let offset = self.pos;
        let mut i = self.pos + 1;
        let name_start = i;
        while i < self.bytes.len()
            && (self.bytes[i].is_ascii_alphanumeric() || self.bytes[i] == b'-')
        {
            i += 1;
        }
        let name = self.input[name_start..i].to_ascii_lowercase();
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            // Skip whitespace.
            while i < self.bytes.len() && self.bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= self.bytes.len() {
                break;
            }
            match self.bytes[i] {
                b'>' => {
                    i += 1;
                    break;
                }
                b'/' => {
                    self_closing = true;
                    i += 1;
                }
                _ => {
                    let (attr, next) = self.consume_attribute(i);
                    if let Some(a) = attr {
                        attrs.push(a);
                    }
                    if next == i {
                        // No progress (malformed); skip a byte to avoid looping.
                        i += 1;
                    } else {
                        i = next;
                    }
                }
            }
        }
        self.pos = i;
        // `script`/`style` take verbatim raw text (never decoded);
        // `textarea` takes *escapable* raw text — no markup inside, but
        // its character references decode like ordinary text.
        let raw_text = matches!(name.as_str(), "script" | "style");
        let escapable_raw_text = name == "textarea";
        self.emit(
            HtmlToken::StartTag {
                name: name.clone(),
                attrs,
                self_closing,
            },
            offset,
        );
        if (raw_text || escapable_raw_text) && !self_closing {
            self.consume_raw_text(&name, escapable_raw_text);
        }
    }

    /// Raw-text content of `<script>`/`<style>`/`<textarea>`: everything
    /// up to the matching close tag, emitted as a single text token (the
    /// DOM builder discards script/style but keeps textarea). When
    /// `escapable`, character references decode and are diagnosed, like
    /// ordinary text.
    fn consume_raw_text(&mut self, tag: &str, escapable: bool) {
        let close = format!("</{tag}");
        let start = self.pos;
        let rest = &self.input[start..];
        let lower = rest.to_ascii_lowercase();
        let end = lower.find(&close).unwrap_or(rest.len());
        let raw = &rest[..end];
        if !raw.is_empty() {
            let text = if escapable {
                self.note_malformed(raw, start);
                normalize_content(&decode_entities(raw))
            } else {
                normalize_content(raw)
            };
            self.emit(HtmlToken::Text(text), start);
        }
        self.pos = start + end;
    }

    /// Parses one `name`, `name=value`, `name="value"`, or `name='value'`
    /// attribute starting at byte `i`. Returns the attribute (if a name was
    /// found) and the next position.
    fn consume_attribute(&mut self, mut i: usize) -> (Option<Attribute>, usize) {
        let name_start = i;
        while i < self.bytes.len()
            && !self.bytes[i].is_ascii_whitespace()
            && !matches!(self.bytes[i], b'=' | b'>' | b'/')
        {
            i += 1;
        }
        if i == name_start {
            return (None, i);
        }
        let name = self.input[name_start..i].to_ascii_lowercase();
        // Skip whitespace before '='.
        let mut j = i;
        while j < self.bytes.len() && self.bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= self.bytes.len() || self.bytes[j] != b'=' {
            return (
                Some(Attribute {
                    name,
                    value: String::new(),
                }),
                i,
            );
        }
        j += 1;
        while j < self.bytes.len() && self.bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= self.bytes.len() {
            return (
                Some(Attribute {
                    name,
                    value: String::new(),
                }),
                j,
            );
        }
        let (value, vstart, next) = match self.bytes[j] {
            q @ (b'"' | b'\'') => {
                let vstart = j + 1;
                let mut k = vstart;
                while k < self.bytes.len() && self.bytes[k] != q {
                    k += 1;
                }
                (
                    self.input[vstart..k].to_string(),
                    vstart,
                    (k + 1).min(self.bytes.len()),
                )
            }
            _ => {
                let vstart = j;
                let mut k = vstart;
                while k < self.bytes.len()
                    && !self.bytes[k].is_ascii_whitespace()
                    && self.bytes[k] != b'>'
                {
                    k += 1;
                }
                (self.input[vstart..k].to_string(), vstart, k)
            }
        };
        self.note_malformed(&value, vstart);
        (
            Some(Attribute {
                name,
                value: normalize_content(&decode_entities(&value)),
            }),
            next,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(tokens: &[HtmlToken], i: usize) -> (&str, &[Attribute], bool) {
        match &tokens[i] {
            HtmlToken::StartTag {
                name,
                attrs,
                self_closing,
            } => (name, attrs, *self_closing),
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn simple_document() {
        let toks = tokenize_html("<html><body><p>hi</p></body></html>");
        assert_eq!(toks.len(), 7);
        assert_eq!(start(&toks, 0).0, "html");
        assert!(matches!(&toks[3], HtmlToken::Text(t) if t == "hi"));
        assert!(matches!(&toks[4], HtmlToken::EndTag { name } if name == "p"));
    }

    #[test]
    fn attributes_quoted_and_bare() {
        let toks = tokenize_html(r#"<a href="x.html" class='big' id=main disabled>"#);
        let (name, attrs, sc) = start(&toks, 0);
        assert_eq!(name, "a");
        assert!(!sc);
        assert_eq!(attrs.len(), 4);
        assert_eq!(
            attrs[0],
            Attribute {
                name: "href".into(),
                value: "x.html".into()
            }
        );
        assert_eq!(attrs[1].value, "big");
        assert_eq!(attrs[2].value, "main");
        assert_eq!(
            attrs[3],
            Attribute {
                name: "disabled".into(),
                value: String::new()
            }
        );
    }

    #[test]
    fn self_closing_tag() {
        let toks = tokenize_html("<br/><hr />");
        assert!(start(&toks, 0).2);
        assert!(start(&toks, 1).2);
    }

    #[test]
    fn uppercase_tags_lowercased() {
        let toks = tokenize_html("<DIV CLASS=Big>x</DIV>");
        let (name, attrs, _) = start(&toks, 0);
        assert_eq!(name, "div");
        assert_eq!(attrs[0].name, "class");
        assert_eq!(attrs[0].value, "Big"); // values keep case
        assert!(matches!(&toks[2], HtmlToken::EndTag { name } if name == "div"));
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize_html("<!DOCTYPE html><!-- note --><p>x</p>");
        assert!(matches!(&toks[0], HtmlToken::Doctype(_)));
        assert!(matches!(&toks[1], HtmlToken::Comment(c) if c == " note "));
    }

    #[test]
    fn entities_in_text_decoded() {
        let toks = tokenize_html("<p>Smith &amp; Jones</p>");
        assert!(matches!(&toks[1], HtmlToken::Text(t) if t == "Smith & Jones"));
    }

    #[test]
    fn entities_in_attr_values_decoded() {
        let toks = tokenize_html(r#"<a title="A &amp; B">x</a>"#);
        let (_, attrs, _) = start(&toks, 0);
        assert_eq!(attrs[0].value, "A & B");
    }

    #[test]
    fn script_content_is_raw_text() {
        let toks = tokenize_html("<script>if (a < b) { x(); }</script><p>y</p>");
        assert!(matches!(&toks[1], HtmlToken::Text(t) if t.contains("a < b")));
        assert!(matches!(&toks[2], HtmlToken::EndTag { name } if name == "script"));
    }

    #[test]
    fn textarea_content_is_escapable_raw_text() {
        // Markup inside textarea is text, but entities decode.
        let toks = tokenize_html("<textarea><b>bold?</b> &amp; more</textarea>");
        assert!(
            matches!(&toks[1], HtmlToken::Text(t) if t == "<b>bold?</b> & more"),
            "{toks:?}"
        );
        assert!(matches!(&toks[2], HtmlToken::EndTag { name } if name == "textarea"));
    }

    #[test]
    fn textarea_close_tag_is_case_insensitive() {
        let toks = tokenize_html("<TEXTAREA>x</TEXTAREA><p>y</p>");
        assert!(matches!(&toks[1], HtmlToken::Text(t) if t == "x"));
        assert!(matches!(&toks[2], HtmlToken::EndTag { name } if name == "textarea"));
    }

    #[test]
    fn stray_less_than_is_text() {
        let toks = tokenize_html("a < b");
        // "a " then "<" merged then " b" -> the tokenizer merges into text tokens
        let text: String = toks
            .iter()
            .map(|t| match t {
                HtmlToken::Text(s) => s.clone(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(text, "a < b");
    }

    #[test]
    fn unterminated_comment_does_not_panic() {
        let toks = tokenize_html("<!-- never closed <p>x</p>");
        assert_eq!(toks.len(), 1);
        assert!(matches!(&toks[0], HtmlToken::Comment(_)));
    }

    #[test]
    fn cdata_and_processing_instructions_are_bogus_comments() {
        let toks = tokenize_html("<p>a</p><![CDATA[not text]]><?php echo \"x\"; ?><p>b</p>");
        let texts: Vec<&str> = toks
            .iter()
            .filter_map(|t| match t {
                HtmlToken::Text(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(texts, ["a", "b"]);
        assert!(matches!(&toks[3], HtmlToken::Comment(c) if c.contains("CDATA")));
    }

    #[test]
    fn unterminated_tag_does_not_panic() {
        let toks = tokenize_html("<p class=");
        assert_eq!(start(&toks, 0).0, "p");
    }

    #[test]
    fn empty_input() {
        assert!(tokenize_html("").is_empty());
    }

    #[test]
    fn whitespace_preserved_in_text() {
        let toks = tokenize_html("<p>  two  spaces  </p>");
        assert!(matches!(&toks[1], HtmlToken::Text(t) if t == "  two  spaces  "));
    }

    #[test]
    fn end_tag_with_junk_after_name() {
        let toks = tokenize_html("<p>x</p junk>");
        assert!(matches!(toks.last().unwrap(), HtmlToken::EndTag { name } if name == "p"));
    }

    #[test]
    fn leading_bom_is_stripped() {
        let toks = tokenize_html("\u{feff}<p>x</p>");
        assert_eq!(start(&toks, 0).0, "p");
        // ... but a BOM later in the stream is ordinary content.
        let toks = tokenize_html("<p>a\u{feff}b</p>");
        assert!(matches!(&toks[1], HtmlToken::Text(t) if t == "a\u{feff}b"));
    }

    #[test]
    fn newlines_normalize_and_nul_is_replaced() {
        let toks = tokenize_html("<p>a\r\nb\rc\0d</p>");
        assert!(matches!(&toks[1], HtmlToken::Text(t) if t == "a\nb\nc\u{fffd}d"));
        let toks = tokenize_html("<a title=\"x\r\ny\">z</a>");
        assert_eq!(start(&toks, 0).1[0].value, "x\ny");
    }

    #[test]
    fn token_offsets_point_at_token_starts() {
        let input = "ab<p class=\"c\">text</p><br>";
        let stream = tokenize_stream(input);
        let starts: Vec<(usize, &HtmlToken)> = stream
            .offsets
            .iter()
            .copied()
            .zip(stream.tokens.iter())
            .collect();
        assert_eq!(starts[0].0, 0); // "ab"
        assert_eq!(starts[1].0, 2); // <p>
        assert_eq!(starts[2].0, 15); // "text"
        assert_eq!(starts[3].0, 19); // </p>
        assert_eq!(starts[4].0, 23); // <br>
        assert_eq!(stream.offsets.len(), stream.tokens.len());
    }

    #[test]
    fn unknown_entities_are_counted_across_all_decoded_content() {
        let stream = tokenize_stream(
            "<p title=\"a &bad1; b\">x &bad2; y</p>\
             <textarea>&bad3;</textarea>\
             <script>&ignored;</script><!-- &ignored; -->",
        );
        assert_eq!(stream.unknown_entities, 3);
        assert_eq!(
            stream.malformed.as_ref().map(|(e, _)| e.as_str()),
            Some("&bad1;")
        );
    }
}
