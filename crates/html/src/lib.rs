//! # webqa-html
//!
//! HTML substrate for the WebQA reproduction: a from-scratch lenient HTML
//! tokenizer and DOM builder, the paper's header-hierarchy *page tree*
//! representation (Definition 3.1), and the XPath-style queries used by the
//! wrapper-induction baselines.
//!
//! The paper (Section 7) parses pages with BeautifulSoup4, removes scripts
//! and images, and converts the DOM to a tree whose edges mean "this text
//! is the header of that text". [`PageTree::parse`] performs that whole
//! pipeline:
//!
//! ```
//! use webqa_html::{PageTree, NodeKind};
//! let page = PageTree::parse(
//!     "<h1>Jane Doe</h1>\
//!      <h2>Students</h2><b>PhD students</b>\
//!      <ul><li>Robert Smith</li><li>Mary Anderson</li></ul>",
//! );
//! let students = page.children(page.root())[0];
//! let phd = page.children(students)[0];
//! assert_eq!(page.kind(phd), NodeKind::List);
//! assert_eq!(page.text(page.children(phd)[0]), "Robert Smith");
//! ```

#![warn(missing_docs)]

mod dom;
mod entities;
mod error;
mod pagetree;
mod parse;
pub mod query;
mod serialize;
mod tokenizer;

pub use dom::{Document, Node, NodeData, NodeId};
pub use entities::decode_entities;
pub use error::{HtmlError, MAX_OPEN_DEPTH};
pub use pagetree::{NodeKind, PageNode, PageNodeId, PageTree, PageTreeBuilder};
pub use parse::{parse_html, try_parse_html};
pub use serialize::serialize;
pub use tokenizer::{tokenize_html, Attribute, HtmlToken};
