//! # webqa-html
//!
//! HTML substrate for the WebQA reproduction: a from-scratch lenient HTML
//! tokenizer and DOM builder, the paper's header-hierarchy *page tree*
//! representation (Definition 3.1), and the XPath-style queries used by the
//! wrapper-induction baselines.
//!
//! The paper (Section 7) parses pages with BeautifulSoup4, removes scripts
//! and images, and converts the DOM to a tree whose edges mean "this text
//! is the header of that text". [`PageTree::parse`] performs that whole
//! pipeline:
//!
//! ```
//! use webqa_html::{PageTree, NodeKind};
//! let page = PageTree::parse(
//!     "<h1>Jane Doe</h1>\
//!      <h2>Students</h2><b>PhD students</b>\
//!      <ul><li>Robert Smith</li><li>Mary Anderson</li></ul>",
//! );
//! let students = page.children(page.root())[0];
//! let phd = page.children(students)[0];
//! assert_eq!(page.kind(phd), NodeKind::List);
//! assert_eq!(page.text(page.children(phd)[0]), "Robert Smith");
//! ```
//!
//! ## The conformance corpus
//!
//! Real pages are sloppy in ways unit tests under-sample, so the parser's
//! observable behaviour is pinned by a declarative, html5lib-tests-style
//! fixture corpus in `tests/fixtures/html5/*.dat` at the workspace root,
//! driven by `tests/html_conformance.rs`. Each `.dat` file covers one
//! damage family — misnested and unclosed tags, raw-text elements
//! (`<script>`/`<style>` dropped, `<textarea>` kept), exotic and
//! malformed character references, attribute edge cases, encoding
//! oddities (BOM, CRLF, NUL), structural noise (doctypes, comments,
//! CDATA, processing instructions), and size/depth limits — and each
//! case records the input, the expected tree serialization, the expected
//! [`ParseDiagnostics`] counters, and (when strict parsing rejects) the
//! exact [`HtmlError`] message.
//!
//! Both entry points are held to the corpus: [`parse_html_report`] must
//! reproduce every tree and diagnostic byte for byte, and
//! [`try_parse_html`] must accept or reject exactly as recorded —
//! building the identical tree whenever it accepts. To extend the
//! corpus, add a `#case`/`#data` pair and run the runner with
//! `WEBQA_BLESS=1` to generate the expectation sections, then
//! hand-review the blessed output before committing it.

#![warn(missing_docs)]

mod dom;
mod entities;
mod error;
mod pagetree;
mod parse;
pub mod query;
mod serialize;
mod tokenizer;

pub use dom::{Document, Node, NodeData, NodeId};
pub use entities::decode_entities;
pub use error::{HtmlError, ParseDiagnostics, MAX_OPEN_DEPTH};
pub use pagetree::{NodeKind, PageNode, PageNodeId, PageTree, PageTreeBuilder};
pub use parse::{parse_html, parse_html_report, try_parse_html};
pub use serialize::serialize;
pub use tokenizer::{tokenize_html, Attribute, HtmlToken};
