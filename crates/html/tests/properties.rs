//! Property-based tests for the HTML substrate: the parser must be total
//! (never panic on arbitrary input) and the page-tree conversion must
//! produce a well-formed tree whose invariants the DSL evaluator relies on.

use proptest::prelude::*;
use webqa_html::{decode_entities, parse_html, serialize, PageTree};

/// Generates small HTML-ish documents: a mix of well-formed fragments and
/// noise.
fn html_soup() -> impl Strategy<Value = String> {
    let frag = prop_oneof![
        "[a-zA-Z0-9 .,']{0,12}".prop_map(|t| t),
        "[a-z]{1,6}".prop_map(|t| format!("<{t}>")),
        "[a-z]{1,6}".prop_map(|t| format!("</{t}>")),
        Just("<h1>T</h1>".to_string()),
        Just("<h2>S</h2>".to_string()),
        Just("<ul><li>a</li><li>b</li></ul>".to_string()),
        Just("<table><tr><td>k</td><td>v</td></tr></table>".to_string()),
        Just("<p><b>Bold</b></p>".to_string()),
        Just("<!-- c -->".to_string()),
        Just("&amp;&#65;&bogus;".to_string()),
        Just("<div class='x y'>".to_string()),
        Just("<script>var a = '<p>';</script>".to_string()),
    ];
    proptest::collection::vec(frag, 0..20).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parser_is_total(html in html_soup()) {
        let _ = parse_html(&html);
    }

    #[test]
    fn parser_total_on_arbitrary_bytes(s in "\\PC{0,200}") {
        let _ = parse_html(&s);
    }

    #[test]
    fn page_tree_is_well_formed(html in html_soup()) {
        let page = PageTree::parse(&html);
        // Parent/child links are mutually consistent.
        for id in page.iter() {
            for &c in page.children(id) {
                prop_assert_eq!(page.node(c).parent, Some(id));
            }
            if let Some(p) = page.node(id).parent {
                prop_assert!(page.children(p).contains(&id));
            }
        }
        // Root is node 0 with no parent.
        prop_assert!(page.node(page.root()).parent.is_none());
        // Ids are dense pre-order: every node reachable exactly once.
        let reachable = 1 + page.descendants(page.root()).len();
        prop_assert_eq!(reachable, page.len());
    }

    #[test]
    fn descendant_depths_increase(html in html_soup()) {
        let page = PageTree::parse(&html);
        for id in page.iter() {
            for &c in page.children(id) {
                prop_assert_eq!(page.depth(c), page.depth(id) + 1);
            }
        }
    }

    #[test]
    fn entity_decoding_never_grows_entities(s in "\\PC{0,80}") {
        // Decoding is idempotent for inputs without '&' introduced by
        // decoding itself (no double decoding of &amp;lt; etc. is required,
        // but a second pass must not panic).
        let once = decode_entities(&s);
        let _ = decode_entities(&once);
    }

    #[test]
    fn text_content_has_no_leading_or_trailing_ws(html in html_soup()) {
        let doc = parse_html(&html);
        let t = doc.text_content(doc.root());
        prop_assert_eq!(t.trim(), t.as_str());
    }

    #[test]
    fn subtree_text_contains_own_text(html in html_soup()) {
        let page = PageTree::parse(&html);
        for id in page.iter() {
            let own = page.text(id);
            if !own.is_empty() {
                prop_assert!(page.subtree_text(id).contains(own));
            }
        }
    }

    /// serialize ∘ parse is a fixpoint: re-parsing the serialized form
    /// reproduces the DOM exactly, on arbitrary soup.
    #[test]
    fn serialize_parse_is_a_fixpoint(html in html_soup()) {
        let doc = parse_html(&html);
        let emitted = serialize(&doc);
        let reparsed = parse_html(&emitted);
        prop_assert_eq!(&doc, &reparsed, "emitted {:?}", emitted);
        // And the emitted form is stable from then on.
        prop_assert_eq!(serialize(&reparsed), emitted);
    }

    /// Serialization preserves the extractable text (what the DSL sees).
    #[test]
    fn serialization_preserves_text_content(html in html_soup()) {
        let doc = parse_html(&html);
        let reparsed = parse_html(&serialize(&doc));
        prop_assert_eq!(doc.text_content(doc.root()), reparsed.text_content(reparsed.root()));
    }
}
