//! A small argument parser for the CLI.
//!
//! The workspace's sanctioned dependency set has no argument-parsing
//! crate, so this module implements the subset the CLI needs: a leading
//! subcommand, `--flag value` options, and `--switch` booleans, with
//! typed accessors and unknown-option rejection.
//!
//! Numeric value options parse through [`ParsedArgs::get_parsed`] with a
//! per-command default — e.g. `eval --jobs N` (worker threads for
//! `webqa::Engine::run_batch`, default `1` = sequential; any `N` produces
//! identical output, `N > 1` just produces it faster).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: the subcommand plus its options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand name (first positional argument).
    pub command: String,
    /// `--key value` options, in insertion order.
    options: BTreeMap<String, String>,
    /// `--switch` booleans.
    switches: Vec<String>,
    /// Bare (non-`--`) arguments after the subcommand, in order.
    positionals: Vec<String>,
}

/// An argument-parsing or validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was given.
    MissingCommand,
    /// An option was given without a value.
    MissingValue(String),
    /// An option the command does not accept.
    UnknownOption(String),
    /// A bare argument given to a command that takes none.
    UnexpectedArgument(String),
    /// A required option is absent.
    MissingOption(String),
    /// An option value failed to parse.
    InvalidValue {
        /// Option name.
        option: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given; try `webqa-cli help`"),
            ArgError::MissingValue(k) => write!(f, "option --{k} requires a value"),
            ArgError::UnknownOption(k) => write!(f, "unknown option --{k}"),
            ArgError::UnexpectedArgument(a) => {
                write!(f, "unexpected argument {a:?}; this command takes none")
            }
            ArgError::MissingOption(k) => write!(f, "required option --{k} is missing"),
            ArgError::InvalidValue {
                option,
                value,
                expected,
            } => {
                write!(f, "option --{option}: {value:?} is not {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Parses raw arguments (without the program name).
///
/// Every `--name` token consumes the following token as its value unless
/// `name` is in `switches`, in which case it is a boolean flag.
pub fn parse<S: AsRef<str>>(raw: &[S], switches: &[&str]) -> Result<ParsedArgs, ArgError> {
    let mut it = raw.iter().map(|s| s.as_ref());
    let command = it.next().ok_or(ArgError::MissingCommand)?.to_string();
    let mut out = ParsedArgs {
        command,
        ..Default::default()
    };
    while let Some(tok) = it.next() {
        let Some(name) = tok.strip_prefix("--") else {
            // A bare token is a positional argument; commands that take
            // none reject it in `expect_only`.
            out.positionals.push(tok.to_string());
            continue;
        };
        if switches.contains(&name) {
            out.switches.push(name.to_string());
        } else {
            let value = it
                .next()
                .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
            out.options.insert(name.to_string(), value.to_string());
        }
    }
    Ok(out)
}

impl ParsedArgs {
    /// The value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// The value of a required option.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError::MissingOption(name.to_string()))
    }

    /// The value of `--name` parsed as `T`, or `default` when absent.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::InvalidValue {
                option: name.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }

    /// Whether `--name` was given as a switch.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Rejects any option or switch outside `allowed`, and any positional
    /// argument (commands that take positionals use
    /// [`ParsedArgs::expect_options`] and read them with
    /// [`ParsedArgs::positionals`]).
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        self.expect_options(allowed)?;
        if let Some(first) = self.positionals.first() {
            return Err(ArgError::UnexpectedArgument(first.clone()));
        }
        Ok(())
    }

    /// Rejects any option or switch outside `allowed`; positional
    /// arguments are permitted.
    pub fn expect_options(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.options.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::UnknownOption(k.clone()));
            }
        }
        for k in &self.switches {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::UnknownOption(k.clone()));
            }
        }
        Ok(())
    }

    /// The bare (non-option) arguments after the subcommand, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Splits a comma-separated option into trimmed non-empty parts.
    pub fn get_list(&self, name: &str) -> Vec<String> {
        self.get(name)
            .map(|v| {
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_options() {
        let a = parse(&["synth", "--task", "fac_t1", "--seed", "7"], &[]).unwrap();
        assert_eq!(a.command, "synth");
        assert_eq!(a.get("task"), Some("fac_t1"));
        assert_eq!(a.get_parsed("seed", 0u64, "an integer").unwrap(), 7);
    }

    #[test]
    fn switches_do_not_consume_values() {
        let a = parse(&["synth", "--paper", "--task", "fac_t1"], &["paper"]).unwrap();
        assert!(a.switch("paper"));
        assert_eq!(a.get("task"), Some("fac_t1"));
        assert!(!a.switch("fast"));
    }

    #[test]
    fn missing_command_is_an_error() {
        assert_eq!(parse::<&str>(&[], &[]), Err(ArgError::MissingCommand));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            parse(&["synth", "--task"], &[]),
            Err(ArgError::MissingValue("task".into()))
        );
    }

    #[test]
    fn positionals_are_collected_and_rejected_by_expect_only() {
        let a = parse(&["import", "pages/", "--lenient"], &["lenient"]).unwrap();
        assert_eq!(a.positionals(), ["pages/"]);
        assert!(a.switch("lenient"));
        // Commands that take no positionals reject them on validation.
        let a = parse(&["synth", "stray"], &[]).unwrap();
        assert_eq!(
            a.expect_only(&["task"]),
            Err(ArgError::UnexpectedArgument("stray".into()))
        );
    }

    #[test]
    fn expect_only_rejects_unknown() {
        let a = parse(&["synth", "--bogus", "1"], &[]).unwrap();
        assert_eq!(
            a.expect_only(&["task"]),
            Err(ArgError::UnknownOption("bogus".into()))
        );
        let a = parse(&["synth", "--task", "x"], &[]).unwrap();
        assert!(a.expect_only(&["task"]).is_ok());
    }

    #[test]
    fn require_and_invalid_value() {
        let a = parse(&["synth", "--seed", "NaN-ish"], &[]).unwrap();
        assert_eq!(
            a.require("task"),
            Err(ArgError::MissingOption("task".into()))
        );
        assert!(matches!(
            a.get_parsed::<u64>("seed", 0, "an integer"),
            Err(ArgError::InvalidValue { .. })
        ));
    }

    #[test]
    fn comma_lists() {
        let a = parse(
            &["run", "--keywords", "PC, Program Committee, ,Service"],
            &[],
        )
        .unwrap();
        assert_eq!(
            a.get_list("keywords"),
            ["PC", "Program Committee", "Service"]
        );
        assert!(a.get_list("absent").is_empty());
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(ArgError::MissingOption("task".into())
            .to_string()
            .contains("--task"));
        assert!(ArgError::UnknownOption("x".into())
            .to_string()
            .contains("--x"));
    }
}
