//! Implementations of the CLI subcommands.

use std::fmt::Write as _;

use webqa::{score_answers, Config, Modality, Selection, WebQa};
use webqa_baselines::{BertQa, EntExtract, Hyb};
use webqa_corpus::{domain_stats, generate_pages, task_by_id, Corpus, Domain, Task, TASKS};
use webqa_dsl::{lint, normalize, PageTree, Program, QueryContext};
use webqa_synth::SynthConfig;

use crate::args::ParsedArgs;
use crate::CliError;

/// The `help` text.
pub(crate) fn help() -> String {
    "\
webqa-cli — web question answering with neurosymbolic program synthesis

USAGE:
    webqa-cli <COMMAND> [OPTIONS]

COMMANDS:
    tasks     List the 25 evaluation tasks (Table 5 of the paper)
                  [--domain faculty|conference|class|clinic]
    corpus    Generate synthetic webpages
                  --domain D [--count N] [--seed S] [--page I] [--raw]
    synth     Synthesize an extraction program for a corpus task
                  --task ID [--train N] [--pages N] [--seed S] [--paper]
                  [--strategy transductive|random|shortest]
                  [--modality both|nl|kw] [--baselines] [--show N] [--json]
    export    Write generated pages (HTML + gold labels) to a directory
                  --domain D --out DIR [--count N] [--seed S]
    run       Run a DSL program on a page
                  --program SRC --question Q --keywords A,B
                  (--html SRC | --html-file PATH)
    check     Lint a DSL program and print its normalized form
                  --program SRC [--question Q] [--keywords A,B] [--normalize]
    stats     Structural-heterogeneity statistics of the generated corpus
                  [--count N] [--seed S] [--domain D]
    help      Show this message
"
    .to_string()
}

fn parse_domain(s: &str) -> Result<Domain, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "faculty" => Ok(Domain::Faculty),
        "conference" => Ok(Domain::Conference),
        "class" => Ok(Domain::Class),
        "clinic" => Ok(Domain::Clinic),
        other => Err(CliError::Command(format!(
            "unknown domain {other:?} (expected faculty|conference|class|clinic)"
        ))),
    }
}

/// `tasks`: the Table 5 catalogue.
pub(crate) fn tasks(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&["domain"])?;
    let filter = a.get("domain").map(parse_domain).transpose()?;
    let mut out = String::new();
    let _ = writeln!(out, "{:<10} {:<11} QUESTION / KEYWORDS", "ID", "DOMAIN");
    for t in &TASKS {
        if filter.is_some_and(|d| d != t.domain) {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<10} {:<11} {}",
            t.id,
            format!("{:?}", t.domain),
            t.question
        );
        let _ = writeln!(
            out,
            "{:<10} {:<11}   keywords: {}",
            "",
            "",
            t.keywords.join(", ")
        );
    }
    Ok(out)
}

/// `corpus`: generate pages, print an inventory or one page's HTML.
pub(crate) fn corpus(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&["domain", "count", "seed", "page", "raw"])?;
    let domain = parse_domain(a.require("domain")?)?;
    let count: usize = a.get_parsed("count", 5, "a positive integer")?;
    let seed: u64 = a.get_parsed("seed", 0, "an integer")?;
    let pages = generate_pages(domain, count, seed);

    if let Some(i) = a.get("page") {
        let i: usize = i.parse().map_err(|_| {
            CliError::Command(format!("--page {i:?} is not an index into 0..{count}"))
        })?;
        let page = pages
            .get(i)
            .ok_or_else(|| CliError::Command(format!("page index {i} out of range 0..{count}")))?;
        if a.switch("raw") {
            return Ok(page.html.clone());
        }
        let tree = page.tree();
        let mut out = String::new();
        let _ = writeln!(out, "{}: {} tree nodes", page.name, tree.len());
        for (task_id, gold) in &page.gold {
            let _ = writeln!(out, "  {task_id}: {} gold strings", gold.len());
        }
        return Ok(out);
    }

    let mut out = String::new();
    let _ = writeln!(out, "{count} {domain:?} pages (seed {seed}):");
    for p in &pages {
        let tree = p.tree();
        let _ = writeln!(
            out,
            "  {:<16} {:>4} nodes  {:>6} bytes html",
            p.name,
            tree.len(),
            p.html.len()
        );
    }
    Ok(out)
}

fn parse_strategy(s: &str) -> Result<Selection, CliError> {
    match s {
        "transductive" => Ok(Selection::Transductive),
        "random" => Ok(Selection::Random),
        "shortest" => Ok(Selection::Shortest),
        other => Err(CliError::Command(format!(
            "unknown strategy {other:?} (expected transductive|random|shortest)"
        ))),
    }
}

fn parse_modality(s: &str) -> Result<Modality, CliError> {
    match s {
        "both" => Ok(Modality::Both),
        "nl" => Ok(Modality::QuestionOnly),
        "kw" => Ok(Modality::KeywordsOnly),
        other => Err(CliError::Command(format!(
            "unknown modality {other:?} (expected both|nl|kw)"
        ))),
    }
}

/// `synth`: end-to-end synthesis + evaluation on one corpus task.
pub(crate) fn synth(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&[
        "task",
        "train",
        "pages",
        "seed",
        "paper",
        "strategy",
        "modality",
        "baselines",
        "show",
        "json",
    ])?;
    let task_id = a.require("task")?;
    let task: &Task = task_by_id(task_id)
        .ok_or_else(|| CliError::Command(format!("unknown task {task_id:?}; see `tasks`")))?;
    let n_pages: usize = a.get_parsed("pages", 12, "a positive integer")?;
    let n_train: usize = a.get_parsed("train", 3, "a positive integer")?;
    let seed: u64 = a.get_parsed("seed", 0, "an integer")?;
    let show: usize = a.get_parsed("show", 3, "a positive integer")?;
    if n_train >= n_pages {
        return Err(CliError::Command(format!(
            "--train {n_train} must be smaller than --pages {n_pages}"
        )));
    }

    let mut config = Config::default();
    if a.switch("paper") {
        config.synth = SynthConfig::paper();
    }
    if let Some(s) = a.get("strategy") {
        config.strategy = parse_strategy(s)?;
    }
    if let Some(m) = a.get("modality") {
        config.modality = parse_modality(m)?;
    }

    let corpus = Corpus::generate(n_pages, seed);
    let ds = corpus.dataset(task, n_train);
    let labeled: Vec<(PageTree, Vec<String>)> = ds
        .train
        .iter()
        .map(|p| (p.page.clone(), p.gold.clone()))
        .collect();
    let unlabeled: Vec<PageTree> = ds.test.iter().map(|p| p.page.clone()).collect();

    let system = WebQa::new(config);
    let result = system.run(task.question, task.keywords, &labeled, &unlabeled);

    if a.switch("json") {
        let gold: Vec<Vec<String>> = ds.test.iter().map(|p| p.gold.clone()).collect();
        let score = score_answers(&result.answers, &gold);
        let report = SynthReport {
            task: task.id,
            question: task.question,
            train_pages: ds.train.len(),
            test_pages: ds.test.len(),
            train_f1: result.synthesis.f1,
            total_optimal: result.synthesis.total_optimal,
            selected: result.program.clone(),
            test: score,
            stats: result.synthesis.stats,
        };
        return serde_json::to_string_pretty(&report)
            .map(|mut s| {
                s.push('\n');
                s
            })
            .map_err(|e| CliError::Command(format!("JSON encoding failed: {e}")));
    }

    let mut out = String::new();
    let _ = writeln!(out, "task {}: {}", task.id, task.question);
    let _ = writeln!(
        out,
        "training: {} pages, optimal F1 {:.3}, {} optimal programs ({} materialized)",
        ds.train.len(),
        result.synthesis.f1,
        result.synthesis.total_optimal,
        result.synthesis.programs.len()
    );
    match &result.program {
        Some(p) => {
            let _ = writeln!(out, "selected: {p}");
        }
        None => {
            let _ = writeln!(out, "selected: (no program synthesized)");
        }
    }
    for (i, p) in result.synthesis.programs.iter().take(show).enumerate() {
        let _ = writeln!(out, "  optimal[{i}]: {p}");
    }

    let gold: Vec<Vec<String>> = ds.test.iter().map(|p| p.gold.clone()).collect();
    let score = score_answers(&result.answers, &gold);
    let _ = writeln!(
        out,
        "test ({} pages): P {:.3}  R {:.3}  F1 {:.3}",
        ds.test.len(),
        score.precision,
        score.recall,
        score.f1
    );

    if a.switch("baselines") {
        let bert = BertQa::new();
        let answers: Vec<Vec<String>> = ds
            .test
            .iter()
            .map(|p| bert.answer_page(task.question, &p.html))
            .collect();
        let s = score_answers(&answers, &gold);
        let _ = writeln!(
            out,
            "BertQA     : P {:.3}  R {:.3}  F1 {:.3}",
            s.precision, s.recall, s.f1
        );

        let train_pairs: Vec<(String, Vec<String>)> = ds
            .train
            .iter()
            .map(|p| (p.html.clone(), p.gold.clone()))
            .collect();
        let answers: Vec<Vec<String>> = match Hyb::train(&train_pairs) {
            Ok(h) => ds.test.iter().map(|p| h.extract(&p.html)).collect(),
            Err(_) => vec![Vec::new(); ds.test.len()],
        };
        let s = score_answers(&answers, &gold);
        let _ = writeln!(
            out,
            "HYB        : P {:.3}  R {:.3}  F1 {:.3}",
            s.precision, s.recall, s.f1
        );

        let ee = EntExtract::new();
        let answers: Vec<Vec<String>> = ds
            .test
            .iter()
            .map(|p| ee.extract(task.question, &p.html))
            .collect();
        let s = score_answers(&answers, &gold);
        let _ = writeln!(
            out,
            "EntExtract : P {:.3}  R {:.3}  F1 {:.3}",
            s.precision, s.recall, s.f1
        );
    }

    Ok(out)
}

/// Machine-readable result of `synth --json`.
#[derive(Debug, serde::Serialize)]
struct SynthReport {
    task: &'static str,
    question: &'static str,
    train_pages: usize,
    test_pages: usize,
    train_f1: f64,
    total_optimal: usize,
    selected: Option<Program>,
    test: webqa::Score,
    stats: webqa_synth::SynthStats,
}

/// `export`: write generated pages and their gold labels to disk.
pub(crate) fn export(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&["domain", "out", "count", "seed"])?;
    let domain = parse_domain(a.require("domain")?)?;
    let out_dir = std::path::PathBuf::from(a.require("out")?);
    let count: usize = a.get_parsed("count", 10, "a positive integer")?;
    let seed: u64 = a.get_parsed("seed", 0, "an integer")?;
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| CliError::Command(format!("cannot create {}: {e}", out_dir.display())))?;
    let pages = generate_pages(domain, count, seed);
    let mut gold_index = serde_json::Map::new();
    for p in &pages {
        let file = out_dir.join(format!("{}.html", p.name));
        std::fs::write(&file, &p.html)
            .map_err(|e| CliError::Command(format!("cannot write {}: {e}", file.display())))?;
        let labels: serde_json::Value = p
            .gold
            .iter()
            .map(|(task, strings)| (task.to_string(), serde_json::json!(strings)))
            .collect::<serde_json::Map<_, _>>()
            .into();
        gold_index.insert(p.name.clone(), labels);
    }
    let gold_path = out_dir.join("gold.json");
    let json = serde_json::to_string_pretty(&serde_json::Value::Object(gold_index))
        .map_err(|e| CliError::Command(format!("JSON encoding failed: {e}")))?;
    std::fs::write(&gold_path, json)
        .map_err(|e| CliError::Command(format!("cannot write {}: {e}", gold_path.display())))?;
    Ok(format!(
        "wrote {count} pages and gold.json to {}\n",
        out_dir.display()
    ))
}

/// `stats`: corpus heterogeneity report.
pub(crate) fn stats(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&["count", "seed", "domain"])?;
    let count: usize = a.get_parsed("count", 20, "a positive integer")?;
    let seed: u64 = a.get_parsed("seed", 0, "an integer")?;
    let filter = a.get("domain").map(parse_domain).transpose()?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "corpus statistics ({count} pages/domain, seed {seed}):"
    );
    for domain in Domain::ALL {
        if filter.is_some_and(|d| d != domain) {
            continue;
        }
        let pages = generate_pages(domain, count, seed);
        let _ = writeln!(out, "  {}", domain_stats(domain, &pages));
    }
    Ok(out)
}

/// `run`: evaluate one program on one page.
pub(crate) fn run(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&["program", "question", "keywords", "html", "html-file"])?;
    let program: Program = a
        .require("program")?
        .parse()
        .map_err(|e| CliError::Command(format!("bad --program: {e}")))?;
    let question = a.get("question").unwrap_or("");
    let keywords = a.get_list("keywords");
    let html = match (a.get("html"), a.get("html-file")) {
        (Some(h), None) => h.to_string(),
        (None, Some(path)) => std::fs::read_to_string(path)
            .map_err(|e| CliError::Command(format!("cannot read {path:?}: {e}")))?,
        _ => {
            return Err(CliError::Command(
                "exactly one of --html or --html-file is required".to_string(),
            ))
        }
    };
    let ctx = QueryContext::new(question, keywords);
    let page = PageTree::parse(&html);
    let answers = program.eval(&ctx, &page);
    let mut out = String::new();
    let _ = writeln!(out, "{} answers:", answers.len());
    for ans in &answers {
        let _ = writeln!(out, "  {ans}");
    }
    Ok(out)
}

/// `check`: lint + optional normalization of a program.
pub(crate) fn check(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&["program", "question", "keywords", "normalize"])?;
    let program: Program = a
        .require("program")?
        .parse()
        .map_err(|e| CliError::Command(format!("bad --program: {e}")))?;
    let ctx = QueryContext::new(a.get("question").unwrap_or(""), a.get_list("keywords"));
    let report = lint(&program, &ctx);
    let mut out = String::new();
    let _ = writeln!(out, "program: {program}");
    let _ = writeln!(
        out,
        "size {} | branches {}",
        program.size(),
        program.branches.len()
    );
    let _ = writeln!(out, "lint: {report}");
    if a.switch("normalize") {
        let n = normalize(&program);
        if n == program {
            let _ = writeln!(out, "normalized: (already normal)");
        } else {
            let _ = writeln!(out, "normalized: {n}");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::dispatch;

    #[test]
    fn tasks_lists_all_25() {
        let out = dispatch(&["tasks"]).unwrap();
        for t in ["fac_t1", "conf_t6", "class_t3", "clinic_t5"] {
            assert!(out.contains(t), "missing {t} in {out}");
        }
    }

    #[test]
    fn tasks_filters_by_domain() {
        let out = dispatch(&["tasks", "--domain", "clinic"]).unwrap();
        assert!(out.contains("clinic_t1"));
        assert!(!out.contains("fac_t1"));
    }

    #[test]
    fn tasks_rejects_bad_domain() {
        let err = dispatch(&["tasks", "--domain", "zoo"]).unwrap_err();
        assert!(err.to_string().contains("zoo"));
    }

    #[test]
    fn corpus_inventory_and_page_views() {
        let out = dispatch(&[
            "corpus", "--domain", "faculty", "--count", "2", "--seed", "5",
        ])
        .unwrap();
        assert!(out.contains("faculty"), "{out}");
        assert!(out.contains("nodes"));

        let html = dispatch(&[
            "corpus", "--domain", "faculty", "--count", "2", "--page", "1", "--raw",
        ])
        .unwrap();
        assert!(html.contains("<h1>"), "{html}");

        let stats = dispatch(&[
            "corpus", "--domain", "faculty", "--count", "2", "--page", "0",
        ])
        .unwrap();
        assert!(stats.contains("tree nodes"));
        assert!(stats.contains("fac_t1"));
    }

    #[test]
    fn corpus_rejects_out_of_range_page() {
        let err =
            dispatch(&["corpus", "--domain", "class", "--count", "2", "--page", "7"]).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn synth_runs_a_small_task() {
        let out = dispatch(&[
            "synth", "--task", "fac_t1", "--pages", "6", "--train", "2", "--seed", "3",
        ])
        .unwrap();
        assert!(out.contains("optimal F1"), "{out}");
        assert!(out.contains("test (4 pages)"), "{out}");
        assert!(out.contains("selected:"), "{out}");
    }

    #[test]
    fn synth_rejects_unknown_task_and_bad_split() {
        assert!(dispatch(&["synth", "--task", "nope"]).is_err());
        let err =
            dispatch(&["synth", "--task", "fac_t1", "--pages", "3", "--train", "3"]).unwrap_err();
        assert!(err.to_string().contains("smaller"));
    }

    #[test]
    fn run_evaluates_inline_html() {
        let out = dispatch(&[
            "run",
            "--program",
            "sat(descendants(root, leaf), true) -> content",
            "--question",
            "Who are the students?",
            "--keywords",
            "Students",
            "--html",
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>",
        ])
        .unwrap();
        assert!(out.contains("Jane Doe"), "{out}");
    }

    #[test]
    fn run_requires_exactly_one_html_source() {
        let err = dispatch(&["run", "--program", "sat(root, true) -> content"]).unwrap_err();
        assert!(err.to_string().contains("--html"));
    }

    #[test]
    fn run_rejects_bad_program() {
        let err = dispatch(&["run", "--program", "wat(", "--html", "<h1>x</h1>"]).unwrap_err();
        assert!(err.to_string().contains("bad --program"));
    }

    #[test]
    fn stats_reports_every_domain() {
        let out = dispatch(&["stats", "--count", "6", "--seed", "1"]).unwrap();
        for d in ["Faculty", "Conference", "Class", "Clinic"] {
            assert!(out.contains(d), "missing {d}: {out}");
        }
        assert!(out.contains("schemas"));
        let out = dispatch(&["stats", "--count", "4", "--domain", "clinic"]).unwrap();
        assert!(out.contains("Clinic") && !out.contains("Faculty"));
    }

    #[test]
    fn synth_json_is_valid_and_complete() {
        let out = dispatch(&[
            "synth", "--task", "fac_t1", "--pages", "6", "--train", "2", "--seed", "3", "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["task"], "fac_t1");
        assert!(v["train_f1"].as_f64().unwrap() >= 0.0);
        assert!(v["test"]["f1"].as_f64().is_some());
        assert!(v["selected"].is_string() || v["selected"].is_null());
        assert!(v["stats"]["extractors_enumerated"].as_u64().unwrap() > 0);
    }

    #[test]
    fn export_writes_pages_and_gold() {
        let dir = std::env::temp_dir().join(format!("webqa_export_{}", std::process::id()));
        let out = dispatch(&[
            "export",
            "--domain",
            "clinic",
            "--count",
            "3",
            "--seed",
            "2",
            "--out",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("3 pages"), "{out}");
        let gold = std::fs::read_to_string(dir.join("gold.json")).expect("gold.json exists");
        let v: serde_json::Value = serde_json::from_str(&gold).expect("valid JSON");
        assert_eq!(v.as_object().unwrap().len(), 3);
        let html_files = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "html")
            })
            .count();
        assert_eq!(html_files, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_reports_lint_and_normal_form() {
        let out = dispatch(&[
            "check",
            "--program",
            "sat(root, kw(0.60)) -> filter(content, true)",
            "--keywords",
            "Students",
            "--normalize",
        ])
        .unwrap();
        assert!(out.contains("no-op"), "{out}");
        assert!(
            out.contains("normalized: sat(root, kw(0.60)) -> content"),
            "{out}"
        );
    }
}
