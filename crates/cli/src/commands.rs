//! Implementations of the CLI subcommands.

use std::fmt::Write as _;

use webqa::{score_answers, Config, Engine, Modality, Selection, Task as EngineTask};
use webqa_baselines::{BertQa, EntExtract, Hyb};
use webqa_corpus::{
    domain_stats, generate_pages, task_by_id, Corpus, Domain, Task, TaskDataset, TASKS,
};
use webqa_dsl::{lint, normalize, PageTree, Program, QueryContext};
use webqa_synth::SynthConfig;

use crate::args::ParsedArgs;
use crate::CliError;

impl From<webqa::Error> for CliError {
    fn from(e: webqa::Error) -> Self {
        CliError::Command(e.to_string())
    }
}

/// The `help` text.
pub(crate) fn help() -> String {
    "\
webqa-cli — web question answering with neurosymbolic program synthesis

USAGE:
    webqa-cli <COMMAND> [OPTIONS]

COMMANDS:
    tasks     List the 25 evaluation tasks (Table 5 of the paper)
                  [--domain faculty|conference|class|clinic]
    corpus    Generate synthetic webpages
                  --domain D [--count N] [--seed S] [--page I] [--raw]
    synth     Synthesize an extraction program for a corpus task
                  --task ID [--train N] [--pages N] [--seed S] [--paper]
                  [--strategy transductive|random|shortest]
                  [--modality both|nl|kw] [--baselines] [--show N] [--json]
                  [--synth-jobs N]
    eval      Evaluate many corpus tasks through the batch engine
                  [--tasks A,B,C] [--domain D] [--pages N] [--train N]
                  [--seed S] [--jobs N] [--synth-jobs N] [--paper]
                  --jobs N runs independent tasks on N worker threads;
                  --synth-jobs N parallelizes branch synthesis *inside*
                  each task (default 1 = sequential; results are
                  identical either way)
    export    Write generated pages (HTML + gold labels) to a directory
                  --domain D --out DIR [--count N] [--seed S]
    run       Run a DSL program on a page
                  --program SRC --question Q --keywords A,B
                  (--html SRC | --html-file PATH) [--lenient]
                  --lenient skips the strict damage checks (browser-style
                  recovery) for pages the fallible parser rejects
    import    Ingest a directory of real HTML pages through the page
              store, printing each file's content digest and parse
              diagnostics; strict by default (rejected pages are listed
              and the exit code is non-zero, like check)
                  DIR [--lenient]
                  [--program SRC [--question Q] [--keywords A,B]]
                  --program additionally runs the program on every
                  interned page (import piped into run)
    check     Lint + analyze a DSL program (sound static verdicts:
              provably-false guards, subsumed branches, provably-empty
              extractors); exits non-zero when anything fires
                  --program SRC [--question Q] [--keywords A,B]
                  [--normalize] [--json]
    stats     Structural-heterogeneity statistics of the generated corpus
                  [--count N] [--seed S] [--domain D]
    serve     Run the resident serving daemon (line-delimited JSON
              and/or HTTP/1.1; see webqa_server's crate docs for both
              wire protocols)
                  (--tcp HOST:PORT | --unix PATH | --http HOST:PORT |
                  any mix) [--paper] [--shards N] [--synth-jobs N]
                  [--feature-cache N] [--result-cache N]
                  [--max-frame BYTES] [--max-requests N] [--workers N]
                  [--backlog N] [--deadline-ms MS] [--cache-dir DIR]
                  --shards N splits the engine into N digest-routed
                  shards, each with its own store, caches, and worker
                  slice (0 = one per core; responses are byte-identical
                  whatever N is); --http HOST:PORT serves the same ops
                  as POST /v1/run|run_batch|intern, GET /v1/ping|stats;
                  --max-requests N serves exactly N responses then stops
                  (0 = run until killed, the default); --workers N fixes
                  the pool executing run/run_batch (0 = all cores);
                  --backlog N caps the admission queue (beyond it,
                  requests are shed with an overloaded error);
                  --deadline-ms MS bounds every request's latency (0 =
                  none); cache knobs size the engine's cross-request
                  feature store / result LRU (0 disables);
                  --cache-dir DIR persists interned pages and the
                  query-independent base-feature tier across restarts
                  (loaded on startup, spilled on clean shutdown;
                  responses are byte-identical with or without it)
    client    Send one request line to a running server, print the reply
                  (--tcp HOST:PORT | --unix PATH | --http HOST:PORT)
                  [--deadline-ms MS]
                  (--request REQUEST | --op ping|stats | --batch TASKS)
                  --batch TASKS wraps a JSON array of run specs into one
                  run_batch request; --http routes the op onto the
                  HTTP/1.1 facade (same envelope back); stats replies
                  get a per-shard breakdown rendered after the raw JSON
    bench-fleet  Measure fleet throughput at each shard count of a sweep
                  [--daemons K] [--shards 1,2,...] [--clients N]
                  [--repeats N] [--pages N] [--train N] [--seed S]
                  [--record]
                  spawns K in-process daemons per sweep point, drives
                  them with round-robin clients replaying a duplicated
                  task stream, prints a shards-vs-req/s table; --record
                  appends a \"serve_fleet\" record to BENCH_serve.json
    help      Show this message
"
    .to_string()
}

fn parse_domain(s: &str) -> Result<Domain, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "faculty" => Ok(Domain::Faculty),
        "conference" => Ok(Domain::Conference),
        "class" => Ok(Domain::Class),
        "clinic" => Ok(Domain::Clinic),
        other => Err(CliError::Command(format!(
            "unknown domain {other:?} (expected faculty|conference|class|clinic)"
        ))),
    }
}

/// `tasks`: the Table 5 catalogue.
pub(crate) fn tasks(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&["domain"])?;
    let filter = a.get("domain").map(parse_domain).transpose()?;
    let mut out = String::new();
    let _ = writeln!(out, "{:<10} {:<11} QUESTION / KEYWORDS", "ID", "DOMAIN");
    for t in &TASKS {
        if filter.is_some_and(|d| d != t.domain) {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<10} {:<11} {}",
            t.id,
            format!("{:?}", t.domain),
            t.question
        );
        let _ = writeln!(
            out,
            "{:<10} {:<11}   keywords: {}",
            "",
            "",
            t.keywords.join(", ")
        );
    }
    Ok(out)
}

/// `corpus`: generate pages, print an inventory or one page's HTML.
pub(crate) fn corpus(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&["domain", "count", "seed", "page", "raw"])?;
    let domain = parse_domain(a.require("domain")?)?;
    let count: usize = a.get_parsed("count", 5, "a positive integer")?;
    let seed: u64 = a.get_parsed("seed", 0, "an integer")?;
    let pages = generate_pages(domain, count, seed);

    if let Some(i) = a.get("page") {
        let i: usize = i.parse().map_err(|_| {
            CliError::Command(format!("--page {i:?} is not an index into 0..{count}"))
        })?;
        let page = pages
            .get(i)
            .ok_or_else(|| CliError::Command(format!("page index {i} out of range 0..{count}")))?;
        if a.switch("raw") {
            return Ok(page.html.clone());
        }
        let tree = page.tree();
        let mut out = String::new();
        let _ = writeln!(out, "{}: {} tree nodes", page.name, tree.len());
        for (task_id, gold) in &page.gold {
            let _ = writeln!(out, "  {task_id}: {} gold strings", gold.len());
        }
        return Ok(out);
    }

    let mut out = String::new();
    let _ = writeln!(out, "{count} {domain:?} pages (seed {seed}):");
    for p in &pages {
        let tree = p.tree();
        let _ = writeln!(
            out,
            "  {:<16} {:>4} nodes  {:>6} bytes html",
            p.name,
            tree.len(),
            p.html.len()
        );
    }
    Ok(out)
}

fn parse_strategy(s: &str) -> Result<Selection, CliError> {
    match s {
        "transductive" => Ok(Selection::Transductive),
        "random" => Ok(Selection::Random),
        "shortest" => Ok(Selection::Shortest),
        other => Err(CliError::Command(format!(
            "unknown strategy {other:?} (expected transductive|random|shortest)"
        ))),
    }
}

fn parse_modality(s: &str) -> Result<Modality, CliError> {
    match s {
        "both" => Ok(Modality::Both),
        "nl" => Ok(Modality::QuestionOnly),
        "kw" => Ok(Modality::KeywordsOnly),
        other => Err(CliError::Command(format!(
            "unknown modality {other:?} (expected both|nl|kw)"
        ))),
    }
}

/// `synth`: end-to-end synthesis + evaluation on one corpus task.
pub(crate) fn synth(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&[
        "task",
        "train",
        "pages",
        "seed",
        "paper",
        "strategy",
        "modality",
        "baselines",
        "show",
        "json",
        "synth-jobs",
    ])?;
    let task_id = a.require("task")?;
    let task: &Task = task_by_id(task_id)
        .ok_or_else(|| CliError::Command(format!("unknown task {task_id:?}; see `tasks`")))?;
    let n_pages: usize = a.get_parsed("pages", 12, "a positive integer")?;
    let n_train: usize = a.get_parsed("train", 3, "a positive integer")?;
    let seed: u64 = a.get_parsed("seed", 0, "an integer")?;
    let show: usize = a.get_parsed("show", 3, "a positive integer")?;
    if n_train >= n_pages {
        return Err(CliError::Command(format!(
            "--train {n_train} must be smaller than --pages {n_pages}"
        )));
    }

    let mut config = Config::default();
    if a.switch("paper") {
        config.synth = SynthConfig::paper();
    }
    config.synth.jobs = a.get_parsed("synth-jobs", 1, "a positive integer")?;
    if let Some(s) = a.get("strategy") {
        config.strategy = parse_strategy(s)?;
    }
    if let Some(m) = a.get("modality") {
        config.modality = parse_modality(m)?;
    }

    let corpus = Corpus::generate(n_pages, seed);
    // Intern the split into the engine's page store (consuming the
    // dataset: the trees move, they are not cloned) and run the staged
    // pipeline as one engine task.
    let TaskDataset { train, test, .. } = corpus.dataset(task, n_train);
    let mut engine = Engine::new(config);
    let mut etask = EngineTask::new(task.question, task.keywords.iter().copied());
    let mut train_html: Vec<String> = Vec::with_capacity(train.len());
    for p in train {
        let id = engine.store_mut().insert_tree(p.page);
        etask.labeled.push((id, p.gold));
        train_html.push(p.html);
    }
    let mut gold: Vec<Vec<String>> = Vec::with_capacity(test.len());
    let mut test_html: Vec<String> = Vec::with_capacity(test.len());
    for p in test {
        etask.unlabeled.push(engine.store_mut().insert_tree(p.page));
        gold.push(p.gold);
        test_html.push(p.html);
    }
    let (n_labeled, n_test) = (etask.labeled.len(), etask.unlabeled.len());
    let result = engine.run(&etask)?;

    if a.switch("json") {
        let score = score_answers(&result.answers, &gold)?;
        let report = SynthReport {
            task: task.id,
            question: task.question,
            train_pages: n_labeled,
            test_pages: n_test,
            train_f1: result.synthesis.f1,
            total_optimal: result.synthesis.total_optimal,
            selected: result.program.clone(),
            test: score,
            stats: result.synthesis.stats,
        };
        return serde_json::to_string_pretty(&report)
            .map(|mut s| {
                s.push('\n');
                s
            })
            .map_err(|e| CliError::Command(format!("JSON encoding failed: {e}")));
    }

    let mut out = String::new();
    let _ = writeln!(out, "task {}: {}", task.id, task.question);
    let _ = writeln!(
        out,
        "training: {} pages, optimal F1 {:.3}, {} optimal programs ({} materialized)",
        n_labeled,
        result.synthesis.f1,
        result.synthesis.total_optimal,
        result.synthesis.programs.len()
    );
    match &result.program {
        Some(p) => {
            let _ = writeln!(out, "selected: {p}");
        }
        None => {
            let _ = writeln!(out, "selected: (no program synthesized)");
        }
    }
    for (i, p) in result.synthesis.programs.iter().take(show).enumerate() {
        let _ = writeln!(out, "  optimal[{i}]: {p}");
    }

    let score = score_answers(&result.answers, &gold)?;
    let _ = writeln!(
        out,
        "test ({} pages): P {:.3}  R {:.3}  F1 {:.3}",
        n_test, score.precision, score.recall, score.f1
    );

    if a.switch("baselines") {
        // The baselines re-parse raw HTML themselves; they do not go
        // through the engine's page store.
        let train_pairs: Vec<(String, Vec<String>)> = train_html
            .into_iter()
            .zip(&etask.labeled)
            .map(|(html, (_, gold))| (html, gold.clone()))
            .collect();

        let bert = BertQa::new();
        let answers: Vec<Vec<String>> = test_html
            .iter()
            .map(|html| bert.answer_page(task.question, html))
            .collect();
        let s = score_answers(&answers, &gold)?;
        let _ = writeln!(
            out,
            "BertQA     : P {:.3}  R {:.3}  F1 {:.3}",
            s.precision, s.recall, s.f1
        );

        let answers: Vec<Vec<String>> = match Hyb::train(&train_pairs) {
            Ok(h) => test_html.iter().map(|html| h.extract(html)).collect(),
            Err(_) => vec![Vec::new(); test_html.len()],
        };
        let s = score_answers(&answers, &gold)?;
        let _ = writeln!(
            out,
            "HYB        : P {:.3}  R {:.3}  F1 {:.3}",
            s.precision, s.recall, s.f1
        );

        let ee = EntExtract::new();
        let answers: Vec<Vec<String>> = test_html
            .iter()
            .map(|html| ee.extract(task.question, html))
            .collect();
        let s = score_answers(&answers, &gold)?;
        let _ = writeln!(
            out,
            "EntExtract : P {:.3}  R {:.3}  F1 {:.3}",
            s.precision, s.recall, s.f1
        );
    }

    Ok(out)
}

/// `eval`: batch evaluation of many corpus tasks through
/// [`Engine::run_batch`]. All selected tasks share one interned page
/// store; `--jobs N` (default 1) fans independent tasks out over `N`
/// worker threads with deterministic, input-ordered results.
pub(crate) fn eval(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&[
        "tasks",
        "domain",
        "pages",
        "train",
        "seed",
        "jobs",
        "synth-jobs",
        "paper",
    ])?;
    let n_pages: usize = a.get_parsed("pages", 8, "a positive integer")?;
    let n_train: usize = a.get_parsed("train", 3, "a positive integer")?;
    let seed: u64 = a.get_parsed("seed", 0, "an integer")?;
    let jobs: usize = a.get_parsed("jobs", 1, "a positive integer")?;
    if n_train >= n_pages {
        return Err(CliError::Command(format!(
            "--train {n_train} must be smaller than --pages {n_pages}"
        )));
    }

    // Which tasks: explicit ids beat a domain filter beats "all 25".
    let ids = a.get_list("tasks");
    let tasks: Vec<&'static Task> = if !ids.is_empty() {
        ids.iter()
            .map(|id| {
                task_by_id(id)
                    .ok_or_else(|| CliError::Command(format!("unknown task {id:?}; see `tasks`")))
            })
            .collect::<Result<_, _>>()?
    } else {
        let filter = a.get("domain").map(parse_domain).transpose()?;
        TASKS
            .iter()
            .filter(|t| filter.is_none_or(|d| d == t.domain))
            .collect()
    };

    let mut config = Config::default();
    if a.switch("paper") {
        config.synth = SynthConfig::paper();
    }
    config.synth.jobs = a.get_parsed("synth-jobs", 1, "a positive integer")?;

    // One shared store: every page of every involved domain is parsed
    // and interned exactly once, however many tasks read it.
    let corpus = Corpus::generate(n_pages, seed);
    let mut engine = Engine::new(config);
    let mut domain_ids: Vec<(Domain, Vec<webqa::PageId>)> = Vec::new();
    for &domain in &Domain::ALL {
        if tasks.iter().any(|t| t.domain == domain) {
            let ids = corpus
                .pages(domain)
                .iter()
                .map(|p| engine.store_mut().insert_tree(p.tree()))
                .collect();
            domain_ids.push((domain, ids));
        }
    }
    let ids_of = |d: Domain| -> &[webqa::PageId] {
        domain_ids
            .iter()
            .find(|(dom, _)| *dom == d)
            .map(|(_, ids)| ids.as_slice())
            .expect("domains of selected tasks are interned")
    };

    let etasks: Vec<EngineTask> = tasks
        .iter()
        .map(|t| {
            let pages = corpus.pages(t.domain);
            EngineTask::from_id_split(
                t.question,
                t.keywords.iter().copied(),
                ids_of(t.domain),
                n_train,
                |i| pages[i].gold(t.id).to_vec(),
            )
        })
        .collect();

    let results = engine.run_batch(&etasks, jobs)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# eval: {} tasks | {} pages/domain ({} labeled) | seed {} | jobs {} | {} interned pages",
        tasks.len(),
        n_pages,
        n_train,
        seed,
        jobs.max(1),
        engine.store().len(),
    );
    let _ = writeln!(
        out,
        "{:<11} {:>8} {:>8} {:>7} {:>7} {:>7}",
        "TASK", "TRAIN_F1", "OPTIMAL", "P", "R", "F1"
    );
    let mut f1_sum = 0.0;
    for (t, result) in tasks.iter().zip(&results) {
        let gold: Vec<Vec<String>> = corpus.pages(t.domain)[n_train..]
            .iter()
            .map(|p| p.gold(t.id).to_vec())
            .collect();
        let score = score_answers(&result.answers, &gold)?;
        f1_sum += score.f1;
        let _ = writeln!(
            out,
            "{:<11} {:>8.3} {:>8} {:>7.3} {:>7.3} {:>7.3}",
            t.id,
            result.synthesis.f1,
            result.synthesis.total_optimal,
            score.precision,
            score.recall,
            score.f1
        );
    }
    let _ = writeln!(
        out,
        "mean F1 over {} tasks: {:.3}",
        tasks.len(),
        f1_sum / (tasks.len().max(1)) as f64
    );
    Ok(out)
}

/// Machine-readable result of `synth --json`.
#[derive(Debug, serde::Serialize)]
struct SynthReport {
    task: &'static str,
    question: &'static str,
    train_pages: usize,
    test_pages: usize,
    train_f1: f64,
    total_optimal: usize,
    selected: Option<Program>,
    test: webqa::Score,
    stats: webqa_synth::SynthStats,
}

/// `export`: write generated pages and their gold labels to disk.
pub(crate) fn export(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&["domain", "out", "count", "seed"])?;
    let domain = parse_domain(a.require("domain")?)?;
    let out_dir = std::path::PathBuf::from(a.require("out")?);
    let count: usize = a.get_parsed("count", 10, "a positive integer")?;
    let seed: u64 = a.get_parsed("seed", 0, "an integer")?;
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| CliError::Command(format!("cannot create {}: {e}", out_dir.display())))?;
    let pages = generate_pages(domain, count, seed);
    let mut gold_index = serde_json::Map::new();
    for p in &pages {
        let file = out_dir.join(format!("{}.html", p.name));
        std::fs::write(&file, &p.html)
            .map_err(|e| CliError::Command(format!("cannot write {}: {e}", file.display())))?;
        let labels: serde_json::Value = p
            .gold
            .iter()
            .map(|(task, strings)| (task.to_string(), serde_json::json!(strings)))
            .collect::<serde_json::Map<_, _>>()
            .into();
        gold_index.insert(p.name.clone(), labels);
    }
    let gold_path = out_dir.join("gold.json");
    let json = serde_json::to_string_pretty(&serde_json::Value::Object(gold_index))
        .map_err(|e| CliError::Command(format!("JSON encoding failed: {e}")))?;
    std::fs::write(&gold_path, json)
        .map_err(|e| CliError::Command(format!("cannot write {}: {e}", gold_path.display())))?;
    Ok(format!(
        "wrote {count} pages and gold.json to {}\n",
        out_dir.display()
    ))
}

/// `import`: walk a directory of real HTML pages and intern each one
/// through the normal [`webqa::PageStore`] path, reporting per-file parse
/// diagnostics and content digests.
///
/// Strict by default: a page the fallible parser rejects is reported and
/// counted, and the command exits non-zero (the `check` convention), so
/// an ingestion pipeline can gate on page health. `--lenient` opts into
/// browser-style recovery for every page. With `--program`, each
/// successfully interned page is additionally run through the program —
/// the one-command version of piping `import` into `run`.
pub(crate) fn import(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_options(&["lenient", "program", "question", "keywords"])?;
    let [dir] = a.positionals() else {
        return Err(CliError::Command(
            "usage: import DIR [--lenient] [--program SRC [--question Q] [--keywords A,B]]"
                .to_string(),
        ));
    };
    let lenient = a.switch("lenient");
    let program: Option<Program> = a
        .get("program")
        .map(|src| {
            src.parse()
                .map_err(|e| CliError::Command(format!("bad --program: {e}")))
        })
        .transpose()?;
    let ctx = QueryContext::new(a.get("question").unwrap_or(""), a.get_list("keywords"));

    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| CliError::Command(format!("cannot read directory {dir:?}: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension()
                .is_some_and(|x| x.eq_ignore_ascii_case("html") || x.eq_ignore_ascii_case("htm"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(CliError::Command(format!("no .html/.htm files in {dir:?}")));
    }

    let mut store = webqa::PageStore::new();
    let mut out = String::new();
    let mut rejected = 0usize;
    for path in &files {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let html = std::fs::read_to_string(path)
            .map_err(|e| CliError::Command(format!("cannot read {}: {e}", path.display())))?;
        // The strict check decides acceptance; the lenient report is what
        // describes the damage either way (strict accepts ordinary
        // sloppiness such as unclosed tags, and both paths build the same
        // tree on accepted pages).
        let (page, diag) = PageTree::parse_report(&html);
        if !lenient {
            if let Err(e) = PageTree::try_parse(&html) {
                let _ = writeln!(out, "{name}: REJECTED: {e}");
                rejected += 1;
                continue;
            }
        }
        let id = store.insert_tree(page);
        let _ = writeln!(out, "{name}: digest {:016x} [{diag}]", id.digest());
        if let Some(program) = &program {
            let tree = store.get(id)?;
            for ans in program.eval(&ctx, tree) {
                let _ = writeln!(out, "  {ans}");
            }
        }
    }
    let _ = writeln!(
        out,
        "imported {} of {} pages ({} distinct) from {dir}",
        files.len() - rejected,
        files.len(),
        store.len(),
    );
    if rejected > 0 {
        let _ = writeln!(
            out,
            "{rejected} page(s) rejected by the strict parser; re-run with --lenient \
             to ingest them with browser-style recovery"
        );
        return Err(CliError::CheckFailed(out));
    }
    Ok(out)
}

/// `stats`: corpus heterogeneity report.
pub(crate) fn stats(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&["count", "seed", "domain"])?;
    let count: usize = a.get_parsed("count", 20, "a positive integer")?;
    let seed: u64 = a.get_parsed("seed", 0, "an integer")?;
    let filter = a.get("domain").map(parse_domain).transpose()?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "corpus statistics ({count} pages/domain, seed {seed}):"
    );
    for domain in Domain::ALL {
        if filter.is_some_and(|d| d != domain) {
            continue;
        }
        let pages = generate_pages(domain, count, seed);
        let _ = writeln!(out, "  {}", domain_stats(domain, &pages));
    }
    Ok(out)
}

/// `run`: evaluate one program on one page.
pub(crate) fn run(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&[
        "program",
        "question",
        "keywords",
        "html",
        "html-file",
        "lenient",
    ])?;
    let program: Program = a
        .require("program")?
        .parse()
        .map_err(|e| CliError::Command(format!("bad --program: {e}")))?;
    let question = a.get("question").unwrap_or("");
    let keywords = a.get_list("keywords");
    let html = match (a.get("html"), a.get("html-file")) {
        (Some(h), None) => h.to_string(),
        (None, Some(path)) => std::fs::read_to_string(path)
            .map_err(|e| CliError::Command(format!("cannot read {path:?}: {e}")))?,
        _ => {
            return Err(CliError::Command(
                "exactly one of --html or --html-file is required".to_string(),
            ))
        }
    };
    let ctx = QueryContext::new(question, keywords);
    // User-supplied HTML goes through the fallible parser by default so
    // damage is reported instead of silently recovered into a nonsense
    // tree; `--lenient` opts back into browser-style recovery for pages
    // whose prose trips the strict entity check (e.g. "Q&As;").
    let page = if a.switch("lenient") {
        PageTree::parse(&html)
    } else {
        PageTree::try_parse(&html).map_err(|e| CliError::Command(format!("bad page HTML: {e}")))?
    };
    let answers = program.eval(&ctx, &page);
    let mut out = String::new();
    let _ = writeln!(out, "{} answers:", answers.len());
    for ans in &answers {
        let _ = writeln!(out, "  {ans}");
    }
    Ok(out)
}

/// `serve`: run the resident daemon until killed (or until
/// `--max-requests` requests have been served, the scriptable stop
/// condition smoke tests rely on).
pub(crate) fn serve(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&[
        "tcp",
        "unix",
        "http",
        "paper",
        "synth-jobs",
        "feature-cache",
        "result-cache",
        "max-frame",
        "max-requests",
        "workers",
        "backlog",
        "shards",
        "deadline-ms",
        "cache-dir",
    ])?;
    let tcp = a.get("tcp");
    let unix = a.get("unix").map(std::path::PathBuf::from);
    let http = a.get("http");
    if tcp.is_none() && unix.is_none() && http.is_none() {
        return Err(CliError::Command(
            "serve needs an endpoint: --tcp HOST:PORT, --unix PATH, and/or --http HOST:PORT"
                .to_string(),
        ));
    }

    let mut config = Config::default();
    if a.switch("paper") {
        config.synth = SynthConfig::paper();
    }
    config.synth.jobs = a.get_parsed("synth-jobs", 1, "a positive integer")?;
    config.cache.feature_capacity = a.get_parsed(
        "feature-cache",
        config.cache.feature_capacity,
        "a non-negative integer",
    )?;
    config.cache.result_capacity = a.get_parsed(
        "result-cache",
        config.cache.result_capacity,
        "a non-negative integer",
    )?;
    let max_frame_bytes: usize = a.get_parsed("max-frame", 1 << 20, "a positive integer")?;
    let max_requests: u64 = a.get_parsed("max-requests", 0, "a non-negative integer")?;
    let workers: usize = a.get_parsed("workers", 0, "a non-negative integer")?;
    let backlog: usize = a.get_parsed("backlog", 64, "a positive integer")?;
    let shards: usize = a.get_parsed("shards", 1, "a non-negative integer")?;
    let deadline_ms: u64 = a.get_parsed("deadline-ms", 0, "a non-negative integer")?;

    let listening = webqa_server::Server::new(webqa_server::ServeOptions {
        engine: config,
        max_frame_bytes,
        workers,
        backlog,
        shards,
        default_deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        max_responses: (max_requests > 0).then_some(max_requests),
        cache_dir: a.get("cache-dir").map(std::path::PathBuf::from),
    })
    .listen_all(tcp, unix.as_deref(), http)
    .map_err(|e| CliError::Command(format!("cannot bind: {e}")))?;

    // The daemon blocks here; announce the endpoints on stderr so
    // clients can find an OS-assigned port before we return.
    if let Some(addr) = listening.tcp_addr() {
        eprintln!("webqa-server listening on tcp://{addr}");
    }
    if let Some(path) = listening.unix_path() {
        eprintln!("webqa-server listening on unix://{}", path.display());
    }
    if let Some(addr) = listening.http_addr() {
        eprintln!("webqa-server listening on http://{addr}");
    }

    if max_requests > 0 {
        // Exact rendezvous on the completion condvar: the server's
        // write-permit cap (max_responses above) guarantees exactly
        // max_requests responses are ever written, and this wait
        // returns the moment the last one lands — no polling interval,
        // no overshoot.
        listening.wait_for_responses(max_requests);
    } else {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    let served = listening.responses_sent();
    listening.shutdown();
    Ok(format!("served {served} requests\n"))
}

/// `client`: one request line to a running server, one response line
/// back.
pub(crate) fn client(a: &ParsedArgs) -> Result<String, CliError> {
    // `--request`, not `--json`: `json` is a global boolean switch
    // (`synth --json`), so it can never carry a value.
    a.expect_only(&[
        "tcp",
        "unix",
        "http",
        "request",
        "op",
        "batch",
        "deadline-ms",
    ])?;
    let deadline_ms: u64 = a.get_parsed("deadline-ms", 0, "a non-negative integer")?;
    let line =
        match (a.get("request"), a.get("op"), a.get("batch")) {
            (Some(request), None, None) if deadline_ms > 0 => {
                let mut parsed: serde_json::Value = serde_json::from_str(request).map_err(|e| {
                    CliError::Command(format!("--deadline-ms needs a valid JSON --request: {e}"))
                })?;
                match &mut parsed {
                    serde_json::Value::Object(obj) => {
                        obj.insert("deadline_ms".to_string(), serde_json::json!(deadline_ms));
                    }
                    _ => {
                        return Err(CliError::Command(
                            "--deadline-ms needs a JSON object --request".to_string(),
                        ))
                    }
                }
                serde_json::to_string(&parsed).expect("request values always serialize")
            }
            (Some(request), None, None) => request.to_string(),
            (None, Some(op @ ("ping" | "stats")), None) => format!("{{\"op\":\"{op}\"}}"),
            (None, Some(other), None) => {
                return Err(CliError::Command(format!(
                    "--op {other:?} has no argument-free form (expected ping|stats); use --request"
                )))
            }
            (None, None, Some(tasks)) => {
                let parsed: serde_json::Value = serde_json::from_str(tasks)
                    .map_err(|e| CliError::Command(format!("bad --batch: {e}")))?;
                if !matches!(parsed, serde_json::Value::Array(_)) {
                    return Err(CliError::Command(
                        "bad --batch: expected a JSON array of run specs".to_string(),
                    ));
                }
                let mut request = serde_json::Map::new();
                request.insert("op".to_string(), serde_json::json!("run_batch"));
                request.insert("tasks".to_string(), parsed);
                if deadline_ms > 0 {
                    request.insert("deadline_ms".to_string(), serde_json::json!(deadline_ms));
                }
                serde_json::to_string(&serde_json::Value::Object(request))
                    .expect("request values always serialize")
            }
            _ => return Err(CliError::Command(
                "exactly one of --request REQUEST, --op ping|stats, or --batch TASKS is required"
                    .to_string(),
            )),
        };
    let response = match (a.get("tcp"), a.get("unix"), a.get("http")) {
        (Some(addr), None, None) => webqa_server::Client::connect_tcp(addr)
            .map_err(|e| CliError::Command(format!("cannot connect to tcp://{addr}: {e}")))?
            .request_line(&line)
            .map_err(|e| CliError::Command(format!("request failed: {e}")))?,
        (None, Some(path), None) => webqa_server::Client::connect_unix(path)
            .map_err(|e| CliError::Command(format!("cannot connect to unix://{path}: {e}")))?
            .request_line(&line)
            .map_err(|e| CliError::Command(format!("request failed: {e}")))?,
        (None, None, Some(addr)) => {
            // The HTTP facade routes by path, so the op must be known
            // client-side; the body is the same request object (the
            // facade re-injects the op from the path, harmlessly).
            let parsed: serde_json::Value = serde_json::from_str(&line).map_err(|e| {
                CliError::Command(format!("--http needs a valid JSON object request: {e}"))
            })?;
            let (method, path) = match parsed["op"].as_str() {
                Some("run") => ("POST", "/v1/run"),
                Some("run_batch") => ("POST", "/v1/run_batch"),
                Some("intern") => ("POST", "/v1/intern"),
                Some("check") => ("POST", "/v1/check"),
                Some("ping") => ("GET", "/v1/ping"),
                Some("stats") => ("GET", "/v1/stats"),
                other => {
                    return Err(CliError::Command(format!(
                        "cannot route op {other:?} over HTTP (expected ping|intern|run|run_batch|check|stats)"
                    )))
                }
            };
            let (_status, body) = webqa_server::HttpClient::connect(addr)
                .map_err(|e| CliError::Command(format!("cannot connect to http://{addr}: {e}")))?
                .request(method, path, &line)
                .map_err(|e| CliError::Command(format!("request failed: {e}")))?;
            body
        }
        _ => {
            return Err(CliError::Command(
                "exactly one of --tcp HOST:PORT, --unix PATH, or --http HOST:PORT is required"
                    .to_string(),
            ))
        }
    };
    // For `stats`, follow the raw envelope with a human-readable
    // per-shard breakdown (the envelope stays line one, scripts keep
    // parsing it as before).
    let is_stats = serde_json::from_str::<serde_json::Value>(&line)
        .map(|v| v["op"].as_str() == Some("stats"))
        .unwrap_or(false);
    let mut out = response.clone() + "\n";
    if is_stats {
        out.push_str(&render_shard_stats(&response));
    }
    Ok(out)
}

/// Renders one cache tier as `3h/2m (60%)`, `0h/0m` (no traffic yet —
/// a rate would be 0/0), or `off` (tier disabled; rendering a hit rate
/// for a cache that is off was the misleading "0% hit rate" this
/// replaces).
fn render_tier(cache: &serde_json::Value, enabled_field: &str, prefix: &str) -> String {
    // Absent flag (older server) defaults to enabled — counters then
    // render as before.
    if !cache[enabled_field].as_bool().unwrap_or(true) {
        return "off".to_string();
    }
    let hits = cache[format!("{prefix}_hits").as_str()]
        .as_u64()
        .unwrap_or(0);
    let misses = cache[format!("{prefix}_misses").as_str()]
        .as_u64()
        .unwrap_or(0);
    match hits + misses {
        0 => format!("{hits}h/{misses}m"),
        total => format!(
            "{hits}h/{misses}m ({:.0}%)",
            hits as f64 / total as f64 * 100.0
        ),
    }
}

/// Renders the `stats` response's per-shard breakdown as one line per
/// shard (empty when the response has none), plus a `persist:` line
/// when the daemon has a snapshot directory with traffic.
fn render_shard_stats(response: &str) -> String {
    let Ok(v) = serde_json::from_str::<serde_json::Value>(response) else {
        return String::new();
    };
    let Some(shards) = v["ok"]["shards"].as_array() else {
        return String::new();
    };
    let mut out = String::new();
    for s in shards {
        let n = |field: &str| s[field].as_u64().unwrap_or(0);
        let _ = writeln!(
            out,
            "shard {}: workers {}, backlog {}, queue {}, inflight {}, pages {}, \
             feature {}, base {}, result {}",
            n("shard"),
            n("workers"),
            n("backlog"),
            n("queue_depth"),
            n("inflight"),
            n("pages"),
            render_tier(&s["cache"], "features_enabled", "feature"),
            render_tier(&s["cache"], "features_enabled", "base"),
            render_tier(&s["cache"], "results_enabled", "result"),
        );
    }
    let persist = &v["ok"]["persist"];
    if persist.as_object().is_some() {
        let p = |field: &str| persist[field].as_u64().unwrap_or(0);
        if p("pages_loaded")
            + p("base_loaded")
            + p("pages_spilled")
            + p("base_spilled")
            + p("corrupt_skipped")
            > 0
        {
            let _ = writeln!(
                out,
                "persist: loaded {} pages + {} base tables in {} ms, \
                 spilled {} pages + {} base tables, {} corrupt entries skipped",
                p("pages_loaded"),
                p("base_loaded"),
                p("load_ms"),
                p("pages_spilled"),
                p("base_spilled"),
                p("corrupt_skipped"),
            );
        }
    }
    out
}

/// `bench-fleet`: spawn an in-process fleet of daemons and measure
/// requests/sec at each shard count of a sweep — the scale-out
/// trajectory (`"bench":"serve_fleet"` records in `BENCH_serve.json`).
pub(crate) fn bench_fleet(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&[
        "daemons", "clients", "repeats", "shards", "pages", "train", "seed", "record",
    ])?;
    let daemons: usize = a.get_parsed("daemons", 2, "a positive integer")?;
    let clients: usize = a.get_parsed("clients", 4, "a positive integer")?;
    let repeats: usize = a.get_parsed("repeats", 2, "a positive integer")?;
    let pages: usize = a.get_parsed("pages", 4, "a positive integer")?;
    let train: usize = a.get_parsed("train", 2, "a positive integer")?;
    let seed: u64 = a.get_parsed("seed", 42, "a non-negative integer")?;
    if daemons == 0 || clients == 0 || repeats == 0 || pages < 2 || train >= pages {
        return Err(CliError::Command(
            "bench-fleet needs daemons/clients/repeats >= 1 and train < pages (pages >= 2)"
                .to_string(),
        ));
    }
    let shard_counts: Vec<usize> = a
        .get("shards")
        .unwrap_or("1,2")
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| {
                    CliError::Command(format!(
                        "bad --shards {s:?}: expected a comma-separated list of positive integers"
                    ))
                })
        })
        .collect::<Result<_, _>>()?;

    // One task per domain: enough digest spread to occupy several
    // shards without re-running the whole catalogue per repeat.
    let task_ids = ["fac_t1", "conf_t1", "class_t1", "clinic_t1"];
    let corpus = Corpus::generate(pages, seed);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fleet: {daemons} daemons, {clients} round-robin clients x {repeats} repeats, \
         {} tasks ({pages} pages/domain, {train} labeled, seed {seed})",
        task_ids.len()
    );
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>10} {:>12}",
        "shards", "requests", "wall_s", "req/s"
    );

    let mut entries = Vec::new();
    for &shards in &shard_counts {
        // A fresh fleet per sweep point: every daemon cold, every cache
        // empty, so the points differ only in the shard count.
        let fleet: Vec<webqa_server::Listening> = (0..daemons)
            .map(|_| {
                webqa_server::Server::new(webqa_server::ServeOptions {
                    engine: Config {
                        synth: SynthConfig::fast(),
                        ..Config::default()
                    },
                    shards,
                    ..webqa_server::ServeOptions::default()
                })
                .listen(Some("127.0.0.1:0"), None)
                .map_err(|e| CliError::Command(format!("cannot bind fleet daemon: {e}")))
            })
            .collect::<Result<_, _>>()?;
        let addrs: Vec<std::net::SocketAddr> = fleet
            .iter()
            .map(|l| l.tcp_addr().expect("tcp endpoint"))
            .collect();

        // Intern every page into every daemon up-front (out of the
        // timed window) and build each daemon's request lines from the
        // handles it issued.
        let mut request_lines: Vec<Vec<String>> = Vec::with_capacity(daemons);
        for &addr in &addrs {
            let mut setup = webqa_server::Client::connect_tcp(addr)
                .map_err(|e| CliError::Command(format!("cannot connect to fleet: {e}")))?;
            let mut lines = Vec::new();
            for id in task_ids {
                let task = task_by_id(id).expect("catalogue task");
                let domain_pages = corpus.pages(task.domain);
                let handles: Vec<u64> = domain_pages
                    .iter()
                    .map(|p| {
                        let mut m = serde_json::Map::new();
                        m.insert("op".to_string(), serde_json::json!("intern"));
                        m.insert("html".to_string(), serde_json::json!(p.html.clone()));
                        let resp = setup
                            .request(&serde_json::Value::Object(m))
                            .map_err(|e| CliError::Command(format!("intern failed: {e}")))?;
                        resp["ok"]["page"]
                            .as_u64()
                            .ok_or_else(|| CliError::Command(format!("intern refused: {resp}")))
                    })
                    .collect::<Result<_, _>>()?;
                let labeled: Vec<serde_json::Value> = handles[..train]
                    .iter()
                    .zip(domain_pages)
                    .map(|(&h, p)| {
                        let mut m = serde_json::Map::new();
                        m.insert("page".to_string(), serde_json::json!(h));
                        m.insert(
                            "gold".to_string(),
                            serde_json::json!(p.gold(task.id).to_vec()),
                        );
                        serde_json::Value::Object(m)
                    })
                    .collect();
                let mut m = serde_json::Map::new();
                m.insert("op".to_string(), serde_json::json!("run"));
                m.insert("question".to_string(), serde_json::json!(task.question));
                m.insert(
                    "keywords".to_string(),
                    serde_json::json!(task
                        .keywords
                        .iter()
                        .map(|k| k.to_string())
                        .collect::<Vec<_>>()),
                );
                m.insert("labeled".to_string(), serde_json::Value::Array(labeled));
                m.insert(
                    "targets".to_string(),
                    serde_json::json!(handles[train..].to_vec()),
                );
                lines.push(
                    serde_json::to_string(&serde_json::Value::Object(m))
                        .expect("request values always serialize"),
                );
            }
            request_lines.push(lines);
        }

        // The timed window: client c drives daemon c % daemons,
        // replaying the stream `repeats` times from its own offset.
        let start = std::time::Instant::now();
        let failures: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let addr = addrs[c % daemons];
                    let lines = &request_lines[c % daemons];
                    scope.spawn(move || {
                        let mut client = match webqa_server::Client::connect_tcp(addr) {
                            Ok(cl) => cl,
                            Err(_) => return repeats * lines.len(),
                        };
                        let mut failed = 0;
                        for r in 0..repeats {
                            for i in 0..lines.len() {
                                let line = &lines[(i + c + r) % lines.len()];
                                match client.request_line(line) {
                                    Ok(resp) if resp.contains("\"ok\"") => {}
                                    _ => failed += 1,
                                }
                            }
                        }
                        failed
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .sum()
        });
        let wall_s = start.elapsed().as_secs_f64();
        for daemon in fleet {
            daemon.shutdown();
        }
        if failures > 0 {
            return Err(CliError::Command(format!(
                "fleet run at {shards} shards had {failures} failed requests"
            )));
        }

        let requests = clients * repeats * task_ids.len();
        let rps = requests as f64 / wall_s.max(1e-9);
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>10.3} {:>12.1}",
            shards, requests, wall_s, rps
        );
        entries.push(webqa_bench::trajectory::FleetEntry {
            shards,
            requests,
            wall_s,
            requests_per_sec: rps,
        });
    }

    if a.switch("record") {
        let record = webqa_bench::trajectory::FleetRecord {
            bench: "serve_fleet".to_string(),
            timestamp_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            daemons,
            clients,
            repeats,
            pages,
            train,
            seed,
            entries,
        };
        let path = webqa_bench::trajectory::serve_path();
        match webqa_bench::trajectory::append(&path, &record) {
            Ok(()) => {
                let _ = writeln!(out, "# recorded to {}", path.display());
            }
            Err(e) => {
                let _ = writeln!(out, "# trajectory not recorded ({e})");
            }
        }
    }
    Ok(out)
}

/// `check`: lint + abstract-interpretation verdicts (and optional
/// normalization) of a program. Returns [`CliError::CheckFailed`] —
/// carrying the full report, which the binary prints to stdout with a
/// failing exit status — when either pass finds a problem.
pub(crate) fn check(a: &ParsedArgs) -> Result<String, CliError> {
    a.expect_only(&["program", "question", "keywords", "normalize", "json"])?;
    let program: Program = a
        .require("program")?
        .parse()
        .map_err(|e| CliError::Command(format!("bad --program: {e}")))?;
    let ctx = QueryContext::new(a.get("question").unwrap_or(""), a.get_list("keywords"));
    let report = lint(&program, &ctx);
    let analysis = webqa_dsl::Analyzer::new(&ctx).analyze(&program);
    let verdicts = analysis.verdicts();
    let clean = report.is_clean() && verdicts.is_empty();
    let normalized = a.switch("normalize").then(|| normalize(&program));
    let out = if a.switch("json") {
        let strings = |items: Vec<String>| {
            serde_json::Value::Array(items.into_iter().map(serde_json::Value::from).collect())
        };
        let mut obj = serde_json::Map::new();
        obj.insert("program".into(), program.to_string().into());
        obj.insert("size".into(), serde_json::json!(program.size()));
        obj.insert("branches".into(), serde_json::json!(program.branches.len()));
        obj.insert(
            "lint".into(),
            strings(report.issues.iter().map(|i| i.to_string()).collect()),
        );
        obj.insert("verdicts".into(), strings(verdicts.clone()));
        obj.insert(
            "canonical_key".into(),
            analysis.canonical_key.clone().into(),
        );
        obj.insert("clean".into(), serde_json::Value::Bool(clean));
        if let Some(n) = &normalized {
            obj.insert("normalized".into(), n.to_string().into());
        }
        format!("{}\n", serde_json::Value::Object(obj))
    } else {
        let mut out = String::new();
        let _ = writeln!(out, "program: {program}");
        let _ = writeln!(
            out,
            "size {} | branches {}",
            program.size(),
            program.branches.len()
        );
        let _ = writeln!(out, "lint: {report}");
        let _ = writeln!(out, "analysis: {analysis}");
        if let Some(n) = &normalized {
            if *n == program {
                let _ = writeln!(out, "normalized: (already normal)");
            } else {
                let _ = writeln!(out, "normalized: {n}");
            }
        }
        out
    };
    if clean {
        Ok(out)
    } else {
        Err(CliError::CheckFailed(out))
    }
}

#[cfg(test)]
mod tests {
    use crate::{dispatch, CliError};

    #[test]
    fn bench_fleet_sweeps_shard_counts() {
        let out = dispatch(&[
            "bench-fleet",
            "--daemons",
            "2",
            "--clients",
            "2",
            "--repeats",
            "1",
            "--pages",
            "2",
            "--train",
            "1",
            "--shards",
            "1,2",
        ])
        .unwrap();
        assert!(out.contains("2 daemons"), "{out}");
        // One table row per swept shard count, and no record line
        // without --record.
        let rows: Vec<&str> = out
            .lines()
            .filter(|l| l.starts_with("1 ") || l.starts_with("2 "))
            .collect();
        assert_eq!(rows.len(), 2, "{out}");
        assert!(!out.contains("# recorded"), "{out}");
    }

    #[test]
    fn bench_fleet_rejects_bad_knobs() {
        let err = dispatch(&["bench-fleet", "--shards", "1,zero"]).unwrap_err();
        assert!(err.to_string().contains("--shards"), "{err}");
        let err = dispatch(&["bench-fleet", "--pages", "2", "--train", "2"]).unwrap_err();
        assert!(err.to_string().contains("train < pages"), "{err}");
    }

    #[test]
    fn tasks_lists_all_25() {
        let out = dispatch(&["tasks"]).unwrap();
        for t in ["fac_t1", "conf_t6", "class_t3", "clinic_t5"] {
            assert!(out.contains(t), "missing {t} in {out}");
        }
    }

    #[test]
    fn tasks_filters_by_domain() {
        let out = dispatch(&["tasks", "--domain", "clinic"]).unwrap();
        assert!(out.contains("clinic_t1"));
        assert!(!out.contains("fac_t1"));
    }

    #[test]
    fn tasks_rejects_bad_domain() {
        let err = dispatch(&["tasks", "--domain", "zoo"]).unwrap_err();
        assert!(err.to_string().contains("zoo"));
    }

    #[test]
    fn corpus_inventory_and_page_views() {
        let out = dispatch(&[
            "corpus", "--domain", "faculty", "--count", "2", "--seed", "5",
        ])
        .unwrap();
        assert!(out.contains("faculty"), "{out}");
        assert!(out.contains("nodes"));

        let html = dispatch(&[
            "corpus", "--domain", "faculty", "--count", "2", "--page", "1", "--raw",
        ])
        .unwrap();
        assert!(html.contains("<h1>"), "{html}");

        let stats = dispatch(&[
            "corpus", "--domain", "faculty", "--count", "2", "--page", "0",
        ])
        .unwrap();
        assert!(stats.contains("tree nodes"));
        assert!(stats.contains("fac_t1"));
    }

    #[test]
    fn corpus_rejects_out_of_range_page() {
        let err =
            dispatch(&["corpus", "--domain", "class", "--count", "2", "--page", "7"]).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn synth_runs_a_small_task() {
        let out = dispatch(&[
            "synth", "--task", "fac_t1", "--pages", "6", "--train", "2", "--seed", "3",
        ])
        .unwrap();
        assert!(out.contains("optimal F1"), "{out}");
        assert!(out.contains("test (4 pages)"), "{out}");
        assert!(out.contains("selected:"), "{out}");
    }

    #[test]
    fn synth_rejects_unknown_task_and_bad_split() {
        assert!(dispatch(&["synth", "--task", "nope"]).is_err());
        let err =
            dispatch(&["synth", "--task", "fac_t1", "--pages", "3", "--train", "3"]).unwrap_err();
        assert!(err.to_string().contains("smaller"));
    }

    #[test]
    fn eval_batches_tasks_and_jobs_do_not_change_output() {
        let args = |jobs: &'static str| {
            vec![
                "eval",
                "--tasks",
                "fac_t1,clinic_t1",
                "--pages",
                "5",
                "--train",
                "2",
                "--seed",
                "3",
                "--jobs",
                jobs,
            ]
        };
        let sequential = dispatch(&args("1")).unwrap();
        assert!(sequential.contains("fac_t1"), "{sequential}");
        assert!(sequential.contains("clinic_t1"), "{sequential}");
        assert!(sequential.contains("mean F1"), "{sequential}");
        // 5 faculty + 5 clinic pages interned once across both tasks.
        assert!(sequential.contains("10 interned pages"), "{sequential}");

        let parallel = dispatch(&args("4")).unwrap();
        // Byte-identical apart from the jobs count echoed in the header.
        assert_eq!(
            sequential.replace("jobs 1", "jobs N"),
            parallel.replace("jobs 4", "jobs N")
        );
    }

    #[test]
    fn eval_synth_jobs_do_not_change_output() {
        let args = |synth_jobs: &'static str| {
            vec![
                "eval",
                "--tasks",
                "fac_t1",
                "--pages",
                "5",
                "--train",
                "2",
                "--seed",
                "3",
                "--synth-jobs",
                synth_jobs,
            ]
        };
        // Branch-parallel synthesis inside the task is deterministic:
        // byte-identical report for any worker count.
        assert_eq!(dispatch(&args("1")).unwrap(), dispatch(&args("3")).unwrap());
    }

    #[test]
    fn eval_filters_by_domain_and_rejects_unknowns() {
        let err = dispatch(&["eval", "--tasks", "nope"]).unwrap_err();
        assert!(err.to_string().contains("nope"));
        let err = dispatch(&["eval", "--pages", "2", "--train", "2"]).unwrap_err();
        assert!(err.to_string().contains("smaller"));
    }

    #[test]
    fn run_evaluates_inline_html() {
        let out = dispatch(&[
            "run",
            "--program",
            "sat(descendants(root, leaf), true) -> content",
            "--question",
            "Who are the students?",
            "--keywords",
            "Students",
            "--html",
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>",
        ])
        .unwrap();
        assert!(out.contains("Jane Doe"), "{out}");
    }

    #[test]
    fn run_requires_exactly_one_html_source() {
        let err = dispatch(&["run", "--program", "sat(root, true) -> content"]).unwrap_err();
        assert!(err.to_string().contains("--html"));
    }

    #[test]
    fn run_rejects_bad_program() {
        let err = dispatch(&["run", "--program", "wat(", "--html", "<h1>x</h1>"]).unwrap_err();
        assert!(err.to_string().contains("bad --program"));
    }

    #[test]
    fn stats_reports_every_domain() {
        let out = dispatch(&["stats", "--count", "6", "--seed", "1"]).unwrap();
        for d in ["Faculty", "Conference", "Class", "Clinic"] {
            assert!(out.contains(d), "missing {d}: {out}");
        }
        assert!(out.contains("schemas"));
        let out = dispatch(&["stats", "--count", "4", "--domain", "clinic"]).unwrap();
        assert!(out.contains("Clinic") && !out.contains("Faculty"));
    }

    #[test]
    fn synth_json_is_valid_and_complete() {
        let out = dispatch(&[
            "synth", "--task", "fac_t1", "--pages", "6", "--train", "2", "--seed", "3", "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["task"], "fac_t1");
        assert!(v["train_f1"].as_f64().unwrap() >= 0.0);
        assert!(v["test"]["f1"].as_f64().is_some());
        assert!(v["selected"].is_string() || v["selected"].is_null());
        assert!(v["stats"]["extractors_enumerated"].as_u64().unwrap() > 0);
    }

    #[test]
    fn export_writes_pages_and_gold() {
        let dir = std::env::temp_dir().join(format!("webqa_export_{}", std::process::id()));
        let out = dispatch(&[
            "export",
            "--domain",
            "clinic",
            "--count",
            "3",
            "--seed",
            "2",
            "--out",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("3 pages"), "{out}");
        let gold = std::fs::read_to_string(dir.join("gold.json")).expect("gold.json exists");
        let v: serde_json::Value = serde_json::from_str(&gold).expect("valid JSON");
        assert_eq!(v.as_object().unwrap().len(), 3);
        let html_files = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "html")
            })
            .count();
        assert_eq!(html_files, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_interns_reports_and_gates_on_strict_damage() {
        let dir = std::env::temp_dir().join(format!("webqa_import_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("good.html"),
            "<h1>Jane Doe</h1><ul><li>A</li></ul>",
        )
        .unwrap();
        std::fs::write(dir.join("dup.html"), "<h1>Jane Doe</h1><ul><li>A</li></ul>").unwrap();
        std::fs::write(dir.join("sloppy.html"), "<ul><li>a<li>b</ul>").unwrap();
        std::fs::write(dir.join("bad.html"), "<p>&bogus;</p>").unwrap();
        std::fs::write(dir.join("notes.txt"), "not a page").unwrap();
        let dir_s = dir.to_str().unwrap();

        // Strict (default): the damaged page is rejected, the command
        // exits non-zero, and the rest are interned and reported.
        let err = dispatch(&["import", dir_s]).unwrap_err();
        let report = match err {
            CliError::CheckFailed(r) => r,
            other => panic!("expected CheckFailed, got {other:?}"),
        };
        assert!(
            report.contains("bad.html: REJECTED: malformed character reference"),
            "{report}"
        );
        assert!(report.contains("sloppy.html: digest"), "{report}");
        assert!(report.contains("[implicit-closes=2]"), "{report}");
        assert!(
            report.contains("imported 3 of 4 pages (2 distinct)"),
            "{report}"
        );
        assert!(!report.contains("notes.txt"), "{report}");

        // Lenient: everything interns; identical pages share a digest.
        let out = dispatch(&["import", dir_s, "--lenient"]).unwrap();
        assert!(out.contains("bad.html: digest"), "{out}");
        assert!(out.contains("[unknown-entities=1]"), "{out}");
        assert!(out.contains("imported 4 of 4 pages (3 distinct)"), "{out}");
        let digest_of = |name: &str| {
            let line = out.lines().find(|l| l.starts_with(name)).unwrap();
            line.split_whitespace().nth(2).unwrap().to_string()
        };
        assert_eq!(digest_of("good.html:"), digest_of("dup.html:"));
        assert_ne!(digest_of("good.html:"), digest_of("sloppy.html:"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_pipes_into_run_via_program() {
        let dir = std::env::temp_dir().join(format!("webqa_import_run_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("page.html"),
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>",
        )
        .unwrap();
        let out = dispatch(&[
            "import",
            dir.to_str().unwrap(),
            "--program",
            "sat(descendants(root, leaf), true) -> content",
            "--question",
            "Who are the students?",
            "--keywords",
            "Students",
        ])
        .unwrap();
        assert!(out.contains("page.html: digest"), "{out}");
        assert!(out.contains("  Jane Doe"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_usage_errors() {
        let err = dispatch(&["import"]).unwrap_err();
        assert!(err.to_string().contains("usage: import DIR"), "{err}");
        let err = dispatch(&["import", "a", "b"]).unwrap_err();
        assert!(err.to_string().contains("usage: import DIR"), "{err}");
        let err = dispatch(&["import", "/nonexistent_webqa_dir"]).unwrap_err();
        assert!(err.to_string().contains("cannot read directory"), "{err}");
    }

    #[test]
    fn serve_requires_an_endpoint_and_client_requires_exactly_one() {
        let err = dispatch(&["serve"]).unwrap_err();
        assert!(err.to_string().contains("endpoint"), "{err}");
        let err = dispatch(&["client", "--op", "ping"]).unwrap_err();
        assert!(err.to_string().contains("--tcp"), "{err}");
        let err = dispatch(&["client", "--tcp", "x", "--unix", "y", "--op", "ping"]).unwrap_err();
        assert!(err.to_string().contains("exactly one"), "{err}");
        let err = dispatch(&["client", "--tcp", "127.0.0.1:1", "--op", "run"]).unwrap_err();
        assert!(err.to_string().contains("ping|stats"), "{err}");
    }

    #[test]
    fn serve_and_client_round_trip_over_a_unix_socket() {
        let path =
            std::env::temp_dir().join(format!("webqa_cli_serve_{}.sock", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let server_path = path_str.clone();
        let server = std::thread::spawn(move || {
            dispatch(&[
                "serve",
                "--unix",
                &server_path,
                "--max-requests",
                "3",
                "--feature-cache",
                "8",
            ])
        });
        // Wait for the socket to appear, then drive three requests so
        // the --max-requests stop condition fires.
        for _ in 0..200 {
            if path.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let pong = dispatch(&["client", "--unix", &path_str, "--op", "ping"]).unwrap();
        assert_eq!(pong.trim(), r#"{"id":null,"ok":{"pong":true}}"#);
        // A raw --request payload (regression: `--json` was a global
        // switch and could never carry one).
        let interned = dispatch(&[
            "client",
            "--unix",
            &path_str,
            "--request",
            r#"{"id":7,"op":"intern","html":"<h1>A</h1><p>x</p>"}"#,
        ])
        .unwrap();
        assert_eq!(
            interned.trim(),
            r#"{"id":7,"ok":{"page":0,"nodes":2,"digest":"ef880ccceb310b9b"}}"#
        );
        let stats = dispatch(&["client", "--unix", &path_str, "--op", "stats"]).unwrap();
        assert!(stats.contains("\"cache\""), "{stats}");
        assert!(stats.contains("\"pages\":1"), "{stats}");
        let out = server.join().expect("server thread").unwrap();
        assert!(out.contains("served 3 requests"), "{out}");
        assert!(!path.exists(), "socket file is removed on shutdown");
    }

    #[test]
    fn max_requests_is_exact_under_concurrency() {
        // N+1 concurrent requests against --max-requests N: exactly N
        // clients get a response, the extra one sees EOF. The server's
        // write-permit cap makes this exact, not timing-dependent.
        let path =
            std::env::temp_dir().join(format!("webqa_cli_serve_exact_{}.sock", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let server_path = path_str.clone();
        let server = std::thread::spawn(move || {
            dispatch(&["serve", "--unix", &server_path, "--max-requests", "2"])
        });
        for _ in 0..200 {
            if path.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        // Connect all three clients before any request is sent, so all
        // three requests genuinely race for the two permits.
        let mut clients: Vec<webqa_server::Client> = (0..3)
            .map(|_| webqa_server::Client::connect_unix(&path).expect("connect"))
            .collect();
        let outcomes: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = clients
                .iter_mut()
                .map(|c| s.spawn(move || c.request_line(r#"{"op":"ping"}"#).is_ok()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        let successes = outcomes.iter().filter(|&&ok| ok).count();
        assert_eq!(successes, 2, "exactly N responses, whatever the timing");
        let out = server.join().expect("server thread").unwrap();
        assert!(out.contains("served 2 requests"), "{out}");
    }

    #[test]
    fn check_reports_lint_and_normal_form() {
        // The no-op filter is a lint issue, so the report comes back as
        // CheckFailed (printed to stdout with a failing exit status).
        let err = dispatch(&[
            "check",
            "--program",
            "sat(root, kw(0.60)) -> filter(content, true)",
            "--keywords",
            "Students",
            "--normalize",
        ])
        .unwrap_err();
        let crate::CliError::CheckFailed(out) = err else {
            panic!("expected CheckFailed, got {err}");
        };
        assert!(out.contains("no-op"), "{out}");
        assert!(
            out.contains("normalized: sat(root, kw(0.60)) -> content"),
            "{out}"
        );
    }

    #[test]
    fn check_passes_clean_programs() {
        let out = dispatch(&[
            "check",
            "--program",
            "sat(root, kw(0.60)) -> content",
            "--keywords",
            "Students",
        ])
        .unwrap();
        assert!(out.contains("lint: no issues"), "{out}");
        assert!(out.contains("analysis: no verdicts"), "{out}");
    }

    #[test]
    fn check_reports_analyzer_verdicts() {
        // No --keywords: kw(0.60) is provably false, and the second
        // branch's guard is subsumed by the first's.
        let err = dispatch(&[
            "check",
            "--program",
            "sat(root, kw(0.60)) -> content; \
             sat(root, true) -> content; \
             sat(root, true) -> split(content, ',')",
            "--question",
            "Who are the students?",
        ])
        .unwrap_err();
        let crate::CliError::CheckFailed(out) = err else {
            panic!("expected CheckFailed, got {err}");
        };
        assert!(out.contains("branch 0: guard is provably false"), "{out}");
        assert!(
            out.contains("branch 2: guard is subsumed by branch 1's guard"),
            "{out}"
        );
    }

    #[test]
    fn check_json_snapshot() {
        let err = dispatch(&[
            "check",
            "--program",
            "sat(root, kw(0.60)) -> content; sat(root, true) -> content",
            "--question",
            "Who are the students?",
            "--normalize",
            "--json",
        ])
        .unwrap_err();
        let crate::CliError::CheckFailed(out) = err else {
            panic!("expected CheckFailed, got {err}");
        };
        let expected = concat!(
            r#"{"program":"sat(root, kw(0.60)) -> content; sat(root, true) -> content","#,
            r#""size":8,"branches":2,"#,
            r#""lint":["program uses matchKeyword but the context has no keywords"],"#,
            r#""verdicts":["branch 0: guard is provably false"],"#,
            r#""canonical_key":"sat(root, true) -> content","clean":false,"#,
            r#""normalized":"sat(root, kw(0.60)) -> content; sat(root, true) -> content"}"#,
            "\n",
        );
        assert_eq!(out, expected, "json report drifted:\n{out}");
    }
}
