//! # webqa-cli
//!
//! The command-line interface to the WebQA reproduction. Every command is
//! a pure function from parsed arguments to an output string, so the
//! whole surface is unit-testable without spawning processes; the binary
//! in `main.rs` only forwards `std::env::args` and prints.
//!
//! ```text
//! webqa-cli tasks [--domain faculty]
//! webqa-cli corpus --domain faculty [--count N] [--seed S] [--page I] [--html]
//! webqa-cli synth --task fac_t1 [--train N] [--pages N] [--seed S] [--paper]
//!                 [--strategy transductive|random|shortest] [--modality both|nl|kw]
//!                 [--baselines] [--show N]
//! webqa-cli eval [--tasks A,B,C] [--domain D] [--pages N] [--train N] [--seed S] [--jobs N]
//! webqa-cli run --program SRC --question Q --keywords A,B (--html SRC | --html-file PATH)
//! webqa-cli import DIR [--lenient] [--program SRC [--question Q] [--keywords A,B]]
//! webqa-cli check --program SRC [--question Q] [--keywords A,B] [--normalize] [--json]
//! webqa-cli serve (--tcp HOST:PORT | --unix PATH | --http HOST:PORT) [--shards N]
//!                 [--max-requests N]
//! webqa-cli client (--tcp HOST:PORT | --unix PATH | --http HOST:PORT)
//!                  (--request REQ | --op ping|stats)
//! webqa-cli bench-fleet [--daemons K] [--shards 1,2,4] [--clients N] [--repeats N] [--record]
//! webqa-cli help
//! ```
//!
//! `eval` drives `webqa::Engine::run_batch`: every page is parsed and
//! interned once in a shared page store, and `--jobs N` (default 1) runs
//! independent tasks on `N` worker threads — output is byte-identical to
//! sequential execution.

#![warn(missing_docs)]

pub mod args;
mod commands;

pub use args::{ArgError, ParsedArgs};

use std::fmt;

/// A CLI failure: argument errors plus command-specific problems.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ArgError),
    /// The subcommand does not exist.
    UnknownCommand(String),
    /// Anything the command itself rejects (unknown task id, unparsable
    /// program, unreadable file…).
    Command(String),
    /// `check` ran and found problems: the payload is the full report
    /// (text or JSON, per the flags). The binary prints it to *stdout* —
    /// it is the command's output, not a usage error — and exits
    /// non-zero so scripts and CI can gate on a clean program.
    CheckFailed(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command {c:?}; try `webqa-cli help`")
            }
            CliError::Command(m) => write!(f, "{m}"),
            CliError::CheckFailed(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// Switch-style options across all commands (take no value).
const SWITCHES: &[&str] = &[
    "paper",
    "raw",
    "baselines",
    "normalize",
    "json",
    "lenient",
    "record",
];

/// Parses and runs one command line, returning the text to print.
///
/// # Errors
///
/// Returns [`CliError`] on unknown commands or options, missing or
/// malformed values, unknown task ids, and unparsable programs or pages.
pub fn dispatch<S: AsRef<str>>(raw: &[S]) -> Result<String, CliError> {
    if raw.is_empty() {
        return Ok(commands::help());
    }
    let parsed = args::parse(raw, SWITCHES)?;
    match parsed.command.as_str() {
        "help" | "--help" | "-h" => Ok(commands::help()),
        "tasks" => commands::tasks(&parsed),
        "corpus" => commands::corpus(&parsed),
        "synth" => commands::synth(&parsed),
        "eval" => commands::eval(&parsed),
        "run" => commands::run(&parsed),
        "import" => commands::import(&parsed),
        "check" => commands::check(&parsed),
        "stats" => commands::stats(&parsed),
        "export" => commands::export(&parsed),
        "serve" => commands::serve(&parsed),
        "client" => commands::client(&parsed),
        "bench-fleet" => commands::bench_fleet(&parsed),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_args_show_help() {
        let out = dispatch::<&str>(&[]).unwrap();
        assert!(out.contains("webqa-cli"));
        assert!(out.contains("synth"));
    }

    #[test]
    fn help_lists_all_commands() {
        let out = dispatch(&["help"]).unwrap();
        for c in [
            "tasks",
            "corpus",
            "synth",
            "eval",
            "run",
            "import",
            "check",
            "stats",
            "export",
            "serve",
            "client",
            "bench-fleet",
        ] {
            assert!(out.contains(c), "help is missing {c}");
        }
        assert!(out.contains("--jobs"), "help is missing --jobs");
    }

    #[test]
    fn unknown_command_is_rejected() {
        let err = dispatch(&["frobnicate"]).unwrap_err();
        assert!(matches!(err, CliError::UnknownCommand(_)));
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn unknown_option_is_rejected() {
        let err = dispatch(&["tasks", "--bogus", "1"]).unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }
}
