//! Binary entry point: forwards `std::env::args` to [`webqa_cli::dispatch`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match webqa_cli::dispatch(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        // A failed `check` is a report, not a usage error: it goes to
        // stdout (where --json consumers read it) with a failing status.
        Err(webqa_cli::CliError::CheckFailed(report)) => {
            print!("{report}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
