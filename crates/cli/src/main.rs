//! Binary entry point: forwards `std::env::args` to [`webqa_cli::dispatch`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match webqa_cli::dispatch(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
