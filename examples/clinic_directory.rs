//! Building a provider directory: extract doctors, accepted insurance
//! plans, and locations from heterogeneous clinic websites — three tasks
//! over the same page set, interned once and executed as a batch on a
//! worker pool ([`Engine::run_batch`]).
//!
//! ```text
//! cargo run --example clinic_directory
//! ```

use webqa::{score_answers, Config, Engine, Task};
use webqa_corpus::{task_by_id, Corpus, Domain};

/// One directory row: clinic name, phones, hours, services.
type DirectoryRow = (String, Vec<String>, Vec<String>, Vec<String>);

const TASK_IDS: [&str; 3] = ["clinic_t1", "clinic_t4", "clinic_t5"];
const TRAIN: usize = 4;

fn main() {
    let corpus = Corpus::generate(12, 99);
    let clinic_pages = corpus.pages(Domain::Clinic);
    println!(
        "Building a clinic directory from {} pages\n",
        clinic_pages.len()
    );

    // Intern the clinic pages once; all three tasks share the handles.
    let mut engine = Engine::new(Config::default());
    let ids: Vec<_> = clinic_pages
        .iter()
        .map(|p| engine.store_mut().insert_tree(p.tree()))
        .collect();
    assert_eq!(engine.store().len(), clinic_pages.len());

    let tasks: Vec<&'static webqa_corpus::Task> = TASK_IDS
        .iter()
        .map(|id| task_by_id(id).expect("task exists"))
        .collect();
    let specs: Vec<Task> = tasks
        .iter()
        .map(|t| {
            Task::from_id_split(t.question, t.keywords.iter().copied(), &ids, TRAIN, |i| {
                clinic_pages[i].gold(t.id).to_vec()
            })
        })
        .collect();

    // One batch, one thread per task; results come back in input order.
    let results = engine
        .run_batch(&specs, specs.len())
        .expect("ids from this store");

    let mut directory: Vec<DirectoryRow> = clinic_pages[TRAIN..]
        .iter()
        .map(|p| (p.name.clone(), Vec::new(), Vec::new(), Vec::new()))
        .collect();
    for (slot, (t, result)) in tasks.iter().zip(&results).enumerate() {
        let gold: Vec<_> = clinic_pages[TRAIN..]
            .iter()
            .map(|p| p.gold(t.id).to_vec())
            .collect();
        let score = score_answers(&result.answers, &gold).expect("aligned");
        println!("{}: {}", t.id, score);
        for (row, answers) in directory.iter_mut().zip(&result.answers) {
            match slot {
                0 => row.1 = answers.clone(),
                1 => row.2 = answers.clone(),
                _ => row.3 = answers.clone(),
            }
        }
    }

    println!("\n--- directory (first 3 clinics) ---");
    for (name, doctors, insurance, locations) in directory.iter().take(3) {
        println!("\n{name}");
        println!("  providers : {}", doctors.join(", "));
        println!("  insurance : {}", insurance.join(", "));
        println!("  locations : {}", locations.join(" | "));
    }
}
