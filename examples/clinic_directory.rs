//! Building a provider directory: extract doctors, accepted insurance
//! plans, and locations from heterogeneous clinic websites — three tasks
//! over the same page set, reusing one corpus.
//!
//! ```text
//! cargo run --example clinic_directory
//! ```

use webqa::{score_answers, Config, WebQa};
use webqa_corpus::{task_by_id, Corpus};

/// One directory row: clinic name, phones, hours, services.
type DirectoryRow = (String, Vec<String>, Vec<String>, Vec<String>);

fn main() {
    let corpus = Corpus::generate(12, 99);
    let system = WebQa::new(Config::default());

    println!(
        "Building a clinic directory from {} pages\n",
        corpus.pages(webqa_corpus::Domain::Clinic).len()
    );

    let mut directory: Vec<DirectoryRow> = Vec::new();
    for (slot, task_id) in ["clinic_t1", "clinic_t4", "clinic_t5"].iter().enumerate() {
        let task = task_by_id(task_id).expect("task exists");
        let data = corpus.dataset(task, 4);
        let labeled: Vec<_> = data
            .train
            .iter()
            .map(|p| (p.page.clone(), p.gold.clone()))
            .collect();
        let unlabeled: Vec<_> = data.test.iter().map(|p| p.page.clone()).collect();
        let result = system.run(task.question, task.keywords, &labeled, &unlabeled);
        let gold: Vec<_> = data.test.iter().map(|p| p.gold.clone()).collect();
        println!("{}: {}", task.id, score_answers(&result.answers, &gold));

        for (i, page) in data.test.iter().enumerate() {
            if slot == 0 {
                directory.push((page.name.clone(), Vec::new(), Vec::new(), Vec::new()));
            }
            match slot {
                0 => directory[i].1 = result.answers[i].clone(),
                1 => directory[i].2 = result.answers[i].clone(),
                _ => directory[i].3 = result.answers[i].clone(),
            }
        }
    }

    println!("\n--- directory (first 3 clinics) ---");
    for (name, doctors, insurance, locations) in directory.iter().take(3) {
        println!("\n{name}");
        println!("  providers : {}", doctors.join(", "));
        println!("  insurance : {}", insurance.join(", "));
        println!("  locations : {}", locations.join(" | "));
    }
}
