//! The paper's motivating scenario (Section 2): a PC chair wants to
//! extract the program committees each researcher has served on, from
//! structurally heterogeneous faculty homepages.
//!
//! ```text
//! cargo run --example faculty_committee
//! ```

use webqa::{score_answers, suggest_labels, Config, WebQa};
use webqa_corpus::{task_by_id, Corpus};

fn main() {
    let corpus = Corpus::generate(16, 7);
    let task = task_by_id("fac_t5").expect("fac_t5 exists");
    println!("question : {}", task.question);
    println!("keywords : {:?}\n", task.keywords);

    // The full target set of researcher pages.
    let pages: Vec<_> = corpus.pages(task.domain).iter().map(|p| p.tree()).collect();

    // Interactive labeling (Section 7): WebQA suggests which pages to
    // label, covering the distinct schemas with at most five requests.
    let system = WebQa::new(Config::default());
    let ctx = system.context(task.question, task.keywords);
    let to_label = suggest_labels(&ctx, &pages, 5);
    println!("suggested pages to label: {to_label:?}");

    let labeled: Vec<_> = to_label
        .iter()
        .map(|&i| {
            let p = &corpus.pages(task.domain)[i];
            (p.tree(), p.gold(task.id).to_vec())
        })
        .collect();
    let test_indices: Vec<usize> = (0..pages.len()).filter(|i| !to_label.contains(i)).collect();
    let unlabeled: Vec<_> = test_indices.iter().map(|&i| pages[i].clone()).collect();

    let result = system.run(task.question, task.keywords, &labeled, &unlabeled);
    println!(
        "\nsynthesized {} optimal programs (train F1 {:.2}); selected:",
        result.synthesis.total_optimal, result.synthesis.f1
    );
    if let Some(p) = &result.program {
        println!("{}", p.to_paper_syntax());
    }

    // Show the extraction for the first few unlabeled researchers.
    for (k, &i) in test_indices.iter().take(3).enumerate() {
        let page = &corpus.pages(task.domain)[i];
        println!("\n--- {} ---", page.name);
        for service in &result.answers[k] {
            println!("  {service}");
        }
    }

    let gold: Vec<_> = test_indices
        .iter()
        .map(|&i| corpus.pages(task.domain)[i].gold(task.id).to_vec())
        .collect();
    println!(
        "\nheld-out score: {}",
        score_answers(&result.answers, &gold)
    );
}
