//! The paper's motivating scenario (Section 2): a PC chair wants to
//! extract the program committees each researcher has served on, from
//! structurally heterogeneous faculty homepages — driven through the
//! staged engine, with the label suggestions coming from the prepared
//! stage itself.
//!
//! ```text
//! cargo run --example faculty_committee
//! ```

use webqa::{score_answers, Config, Engine, Task};
use webqa_corpus::{task_by_id, Corpus};

fn main() {
    let corpus = Corpus::generate(16, 7);
    let task = task_by_id("fac_t5").expect("fac_t5 exists");
    println!("question : {}", task.question);
    println!("keywords : {:?}\n", task.keywords);

    // The full target set of researcher pages, interned once.
    let faculty = corpus.pages(task.domain);
    let mut engine = Engine::new(Config::default());
    let mut spec = Task::new(task.question, task.keywords.iter().copied());
    for p in faculty {
        spec.unlabeled
            .push(engine.store_mut().insert_tree(p.tree()));
    }

    // Interactive labeling (Section 7): the prepared stage suggests
    // which pages to label, covering the distinct schemas with at most
    // five requests; `label` moves each into the training set.
    let mut prepared = engine.prepare(&spec).expect("ids from this store");
    let to_label = prepared.suggest_labels(5);
    println!("suggested pages to label: {to_label:?}");

    // `label` shifts later indices down, so consume in descending order
    // while tracking which original pages remain unlabeled.
    let mut test_indices: Vec<usize> = (0..faculty.len()).collect();
    let mut picks = to_label;
    picks.sort_unstable_by(|a, b| b.cmp(a));
    for idx in picks {
        let original = test_indices.remove(idx);
        prepared.label(idx, faculty[original].gold(task.id).to_vec());
    }

    let selected = prepared.synthesize().select();
    println!(
        "\nsynthesized {} optimal programs (train F1 {:.2}); selected:",
        selected.outcome().total_optimal,
        selected.outcome().f1
    );
    if let Some(p) = selected.program() {
        println!("{}", p.to_paper_syntax());
    }

    // Show the extraction for the first few unlabeled researchers.
    let answers = selected.answers();
    for (k, &i) in test_indices.iter().take(3).enumerate() {
        println!("\n--- {} ---", faculty[i].name);
        for service in &answers[k] {
            println!("  {service}");
        }
    }

    let gold: Vec<_> = test_indices
        .iter()
        .map(|&i| faculty[i].gold(task.id).to_vec())
        .collect();
    println!(
        "\nheld-out score: {}",
        score_answers(&answers, &gold).expect("aligned")
    );
}
