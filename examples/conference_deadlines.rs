//! Single-fact extraction: paper submission deadlines from conference
//! sites (task conf_t4) — one of the two tasks where the paper notes the
//! synthesized program essentially wraps the QA model, so BERTQA is
//! competitive.
//!
//! ```text
//! cargo run --example conference_deadlines
//! ```

use webqa::{score_answers, Config, Engine, Task};
use webqa_baselines::BertQa;
use webqa_corpus::{task_by_id, Corpus};

fn main() {
    let corpus = Corpus::generate(14, 3);
    let task = task_by_id("conf_t4").expect("conf_t4 exists");
    let data = corpus.dataset(task, 5);
    println!("question : {}\n", task.question);

    // WebQA through the engine.
    let mut engine = Engine::new(Config::default());
    let mut spec = Task::new(task.question, task.keywords.iter().copied());
    for p in &data.train {
        let id = engine.store_mut().insert_tree(p.page.clone());
        spec.labeled.push((id, p.gold.clone()));
    }
    for p in &data.test {
        spec.unlabeled
            .push(engine.store_mut().insert_tree(p.page.clone()));
    }
    let result = engine.run(&spec).expect("ids from this store");

    // BERTQA on the same pages.
    let bert = BertQa::new();
    let bert_answers: Vec<Vec<String>> = data
        .test
        .iter()
        .map(|p| bert.answer_page(task.question, &p.html))
        .collect();

    println!("{:<16} {:<28} {:<28} gold", "page", "WebQA", "BERTQA");
    for (i, page) in data.test.iter().enumerate().take(8) {
        println!(
            "{:<16} {:<28} {:<28} {}",
            page.name,
            result.answers[i].join("; "),
            bert_answers[i].join("; "),
            page.gold.join("; "),
        );
    }

    let gold: Vec<_> = data.test.iter().map(|p| p.gold.clone()).collect();
    println!(
        "\nWebQA : {}",
        score_answers(&result.answers, &gold).expect("aligned")
    );
    println!(
        "BERTQA: {}",
        score_answers(&bert_answers, &gold).expect("aligned")
    );
    if let Some(p) = &result.program {
        println!("\nselected program: {p}");
    }
}
