//! Single-fact extraction: paper submission deadlines from conference
//! sites (task conf_t4) — one of the two tasks where the paper notes the
//! synthesized program essentially wraps the QA model, so BERTQA is
//! competitive.
//!
//! ```text
//! cargo run --example conference_deadlines
//! ```

use webqa::{score_answers, Config, WebQa};
use webqa_baselines::BertQa;
use webqa_corpus::{task_by_id, Corpus};

fn main() {
    let corpus = Corpus::generate(14, 3);
    let task = task_by_id("conf_t4").expect("conf_t4 exists");
    let data = corpus.dataset(task, 5);
    println!("question : {}\n", task.question);

    // WebQA.
    let system = WebQa::new(Config::default());
    let labeled: Vec<_> = data
        .train
        .iter()
        .map(|p| (p.page.clone(), p.gold.clone()))
        .collect();
    let unlabeled: Vec<_> = data.test.iter().map(|p| p.page.clone()).collect();
    let result = system.run(task.question, task.keywords, &labeled, &unlabeled);

    // BERTQA on the same pages.
    let bert = BertQa::new();
    let bert_answers: Vec<Vec<String>> = data
        .test
        .iter()
        .map(|p| bert.answer_page(task.question, &p.html))
        .collect();

    println!("{:<16} {:<28} {:<28} gold", "page", "WebQA", "BERTQA");
    for (i, page) in data.test.iter().enumerate().take(8) {
        println!(
            "{:<16} {:<28} {:<28} {}",
            page.name,
            result.answers[i].join("; "),
            bert_answers[i].join("; "),
            page.gold.join("; "),
        );
    }

    let gold: Vec<_> = data.test.iter().map(|p| p.gold.clone()).collect();
    println!("\nWebQA : {}", score_answers(&result.answers, &gold));
    println!("BERTQA: {}", score_answers(&bert_answers, &gold));
    if let Some(p) = &result.program {
        println!("\nselected program: {p}");
    }
}
