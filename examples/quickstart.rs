//! Quickstart: run WebQA end-to-end on one generated task, through the
//! staged engine API (prepare → synthesize → select → answers).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use webqa::{score_answers, Config, Engine, Task};
use webqa_corpus::{task_by_id, Corpus};

fn main() {
    // A small corpus: 12 faculty pages, 5 labeled + 7 test.
    let corpus = Corpus::generate(12, 42);
    let task = task_by_id("fac_t1").expect("task exists");
    let data = corpus.dataset(task, 5);

    println!("task     : {} — {}", task.id, task.question);
    println!("keywords : {:?}", task.keywords);
    println!(
        "train    : {} pages, test: {} pages",
        data.train.len(),
        data.test.len()
    );

    // Intern the pages once; the engine hands out shared handles.
    let mut engine = Engine::new(Config::default());
    let mut spec = Task::new(task.question, task.keywords.iter().copied());
    for p in data.train {
        let id = engine.store_mut().insert_tree(p.page);
        spec.labeled.push((id, p.gold));
    }
    let gold: Vec<Vec<String>> = data
        .test
        .into_iter()
        .map(|p| {
            spec.unlabeled.push(engine.store_mut().insert_tree(p.page));
            p.gold
        })
        .collect();

    // Stage by stage, with timings and intermediate results visible.
    let start = std::time::Instant::now();
    let prepared = engine.prepare(&spec).expect("ids came from this store");
    let synthesized = prepared.synthesize();
    println!(
        "synthesis: {:?} ({} optimal programs, train F1 {:.2})",
        start.elapsed(),
        synthesized.outcome().total_optimal,
        synthesized.train_f1()
    );

    let selected = synthesized.select();
    if let Some(ensemble) = selected.ensemble() {
        println!(
            "selection: {} distinct behaviours, agreement {:.2}",
            ensemble.distinct_behaviours(),
            ensemble.agreement()
        );
    }
    if let Some(program) = selected.program() {
        println!("\nselected program:\n  {program}");
        println!("\npaper syntax:\n{}", program.to_paper_syntax());
    }

    let answers = selected.answers();
    let score = score_answers(&answers, &gold).expect("aligned split");
    println!("\ntest-set score: {score}");
    println!("\nfirst test page answers: {:?}", answers.first());
}
