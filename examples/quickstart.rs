//! Quickstart: run WebQA end-to-end on one generated task.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use webqa::{score_answers, Config, WebQa};
use webqa_corpus::{task_by_id, Corpus};

fn main() {
    // A small corpus: 12 faculty pages, 5 labeled + 7 test.
    let corpus = Corpus::generate(12, 42);
    let task = task_by_id("fac_t1").expect("task exists");
    let data = corpus.dataset(task, 5);

    println!("task     : {} — {}", task.id, task.question);
    println!("keywords : {:?}", task.keywords);
    println!(
        "train    : {} pages, test: {} pages",
        data.train.len(),
        data.test.len()
    );

    let system = WebQa::new(Config::default());
    let labeled: Vec<_> = data
        .train
        .iter()
        .map(|p| (p.page.clone(), p.gold.clone()))
        .collect();
    let unlabeled: Vec<_> = data.test.iter().map(|p| p.page.clone()).collect();

    let start = std::time::Instant::now();
    let result = system.run(task.question, task.keywords, &labeled, &unlabeled);
    println!(
        "synthesis: {:?} ({} optimal programs, train F1 {:.2})",
        start.elapsed(),
        result.synthesis.total_optimal,
        result.synthesis.f1
    );

    if let Some(program) = &result.program {
        println!("\nselected program:\n  {program}");
        println!("\npaper syntax:\n{}", program.to_paper_syntax());
    }

    let gold: Vec<_> = data.test.iter().map(|p| p.gold.clone()).collect();
    let score = score_answers(&result.answers, &gold);
    println!("\ntest-set score: {score}");

    println!("\nfirst test page answers: {:?}", result.answers.first());
}
