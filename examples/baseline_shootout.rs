//! All four tools on one task, side by side — a miniature of the paper's
//! Figure 12 comparison with visible per-page outputs.
//!
//! ```text
//! cargo run --example baseline_shootout [task_id]
//! ```

use webqa::{score_answers, Config, Engine, Score, Task};
use webqa_baselines::{BertQa, EntExtract, Hyb};
use webqa_corpus::{task_by_id, Corpus};

fn main() {
    let task_id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fac_t1".to_string());
    let task = task_by_id(&task_id).unwrap_or_else(|| {
        eprintln!("unknown task {task_id}; try fac_t1..fac_t8, conf_t1..conf_t6, …");
        std::process::exit(1);
    });

    let corpus = Corpus::generate(12, 42);
    let data = corpus.dataset(task, 5);
    println!("task: {} — {}\n", task.id, task.question);
    let gold: Vec<_> = data.test.iter().map(|p| p.gold.clone()).collect();

    // WebQA, through the engine: pages interned once, no tree clones.
    let mut engine = Engine::new(Config::default());
    let mut spec = Task::new(task.question, task.keywords.iter().copied());
    for p in &data.train {
        let id = engine.store_mut().insert_tree(p.page.clone());
        spec.labeled.push((id, p.gold.clone()));
    }
    for p in &data.test {
        spec.unlabeled
            .push(engine.store_mut().insert_tree(p.page.clone()));
    }
    let webqa = engine.run(&spec).expect("ids from this store");

    // Baselines (they re-parse raw HTML themselves).
    let bert = BertQa::new();
    let bert_out: Vec<Vec<String>> = data
        .test
        .iter()
        .map(|p| bert.answer_page(task.question, &p.html))
        .collect();
    let hyb_train: Vec<(String, Vec<String>)> = data
        .train
        .iter()
        .map(|p| (p.html.clone(), p.gold.clone()))
        .collect();
    let hyb_out: Vec<Vec<String>> = match Hyb::train(&hyb_train) {
        Ok(w) => {
            println!("HYB learned wrapper: {}\n", w.path());
            data.test.iter().map(|p| w.extract(&p.html)).collect()
        }
        Err(e) => {
            println!("HYB training failed: {e}\n");
            vec![Vec::new(); data.test.len()]
        }
    };
    let ee = EntExtract::new();
    let ent_out: Vec<Vec<String>> = data
        .test
        .iter()
        .map(|p| ee.extract(task.question, &p.html))
        .collect();

    println!("--- first test page ({}) ---", data.test[0].name);
    println!("gold      : {:?}", gold[0]);
    println!("WebQA     : {:?}", webqa.answers[0]);
    println!("BERTQA    : {:?}", bert_out[0]);
    println!("HYB       : {:?}", hyb_out[0]);
    println!("EntExtract: {:?}", ent_out[0]);

    let score = |answers: &[Vec<String>]| -> Score {
        score_answers(answers, &gold).expect("aligned test split")
    };
    println!("\n--- scores over {} test pages ---", data.test.len());
    println!("WebQA     : {}", score(&webqa.answers));
    println!("BERTQA    : {}", score(&bert_out));
    println!("HYB       : {}", score(&hyb_out));
    println!("EntExtract: {}", score(&ent_out));
}
