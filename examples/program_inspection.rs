//! Working with DSL programs as data: parse, lint, normalize, inspect
//! the optimal set, and audit the engine against the brute-force oracle.
//!
//! ```text
//! cargo run --example program_inspection
//! ```

use webqa_dsl::{lint, normalize, PageTree, Program, QueryContext};
use webqa_synth::oracle::{enumerate_optimal, tiny_config};
use webqa_synth::{synthesize, Example};

fn main() {
    // ---- 1. Parse and pretty-print -------------------------------------
    let src = "sat(descendants(descendants(root, text(kw(0.80))), leaf), true) -> \
               filter(split(content, ','), kw(0.50))";
    let program: Program = src.parse().expect("the motivating example is valid DSL");
    println!("text form  : {program}");
    println!("paper form :\n{}", program.to_paper_syntax());
    println!(
        "size {} | branches {}",
        program.size(),
        program.branches.len()
    );

    // ---- 2. Lint a sloppy variant ---------------------------------------
    let sloppy: Program = "sat(root, kw(0.63)) -> filter(content, true); \
                           sat(root, kw(0.63)) -> content"
        .parse()
        .expect("sloppy but syntactically fine");
    let ctx = QueryContext::new(
        "Which program committees has this researcher served on?",
        ["PC", "Program Committee", "Service"],
    );
    println!("\nlint of {sloppy}:");
    for issue in &lint(&sloppy, &ctx).issues {
        println!("  - {issue}");
    }

    // ---- 3. Normalize ----------------------------------------------------
    let noisy: Program = "sat(root, and(true, kw(0.60))) -> \
                          filter(filter(split(split(content, ','), ','), kw(0.50)), true)"
        .parse()
        .expect("valid");
    println!("\nnoisy      : {noisy}");
    println!("normalized : {}", normalize(&noisy));

    // ---- 4. Audit the engine against the oracle --------------------------
    let page = PageTree::parse(
        "<h1>Jane Doe</h1><h2>Service</h2>\
         <ul><li>PLDI '21 (PC), CAV '20 (PC)</li><li>hiking club</li></ul>",
    );
    let examples = vec![Example::new(
        page,
        vec!["PLDI '21 (PC)".to_string(), "CAV '20 (PC)".to_string()],
    )];
    let cfg = tiny_config();
    let oracle = enumerate_optimal(&cfg, &ctx, &examples);
    let engine = synthesize(&cfg, &ctx, &examples);
    println!(
        "\noracle: F1 {:.3} over {} candidates ({} optimal)",
        oracle.f1,
        oracle.enumerated,
        oracle.programs.len()
    );
    println!(
        "engine: F1 {:.3} ({} optimal, {} extractors enumerated, {} pruned)",
        engine.f1,
        engine.total_optimal,
        engine.stats.extractors_enumerated,
        engine.stats.extractors_pruned
    );
    assert!(
        (oracle.f1 - engine.f1).abs() < 1e-9,
        "Theorem 5.1 violated!"
    );
    println!("engine optimum matches the exhaustive oracle (Theorem 5.1 holds here).");

    // A couple of optimal programs, normalized for readability.
    println!("\nsample optimal programs:");
    for p in engine.programs.iter().take(5) {
        println!("  {}", normalize(p));
    }
}
