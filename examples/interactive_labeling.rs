//! The paper's interactive-labeling loop (Section 7) on user-supplied
//! pages: WebQA clusters the target pages and proposes which (at most
//! five) to label, the "user" labels them, and synthesis runs on exactly
//! those labels.
//!
//! ```text
//! cargo run --example interactive_labeling
//! ```

use webqa::{score_answers, suggest_labels, Config, WebQa, MAX_LABEL_REQUESTS};
use webqa_dsl::PageTree;

/// Hand-written faculty pages with three different layouts — the
/// structural heterogeneity of Figure 2/3 of the paper in miniature.
fn pages() -> Vec<(&'static str, PageTree, Vec<String>)> {
    let raw: Vec<(&'static str, &'static str, &'static [&'static str])> = vec![
        (
            "jane",
            "<h1>Jane Doe</h1>\
             <h2>Students</h2><h3>PhD students</h3>\
             <ul><li>Robert Smith</li><li>Mary Anderson</li></ul>\
             <h2>Activities</h2><p>PLDI '21 (PC)</p>",
            &["Robert Smith", "Mary Anderson"],
        ),
        (
            "john",
            "<h1>John Doe</h1>\
             <h2>Research</h2><p>Programming languages.</p>\
             <h2>Advisees</h2><ul><li>Sarah Brown</li></ul>",
            &["Sarah Brown"],
        ),
        (
            "robert",
            "<h1>Robert Doe</h1>\
             <h2>Teaching</h2><p>CS 001. CS 010.</p>\
             <h2>Current PhD Students</h2>\
             <ul><li>Wei Chen</li><li>Elena Petrov</li><li>Ade Okafor</li></ul>",
            &["Wei Chen", "Elena Petrov", "Ade Okafor"],
        ),
        (
            "alice",
            "<h1>Alice Roe</h1>\
             <h2>Group</h2><table><tr><td>Tom Lee</td></tr><tr><td>Ana Cruz</td></tr></table>\
             <h2>Service</h2><p>POPL '20 (PC)</p>",
            &["Tom Lee", "Ana Cruz"],
        ),
        (
            "bob",
            "<h1>Bob Poe</h1>\
             <h2>News</h2><p>Two papers accepted to PLDI 2019.</p>\
             <h2>PhD Students</h2><ul><li>Ivan Novak</li></ul>",
            &["Ivan Novak"],
        ),
        (
            "carol",
            "<h1>Carol Low</h1>\
             <h2>Publications</h2><p>Synthesizing programs from examples. PLDI 2018.</p>\
             <h2>Students</h2><ul><li>Lin Zhang</li><li>Omar Haddad</li></ul>",
            &["Lin Zhang", "Omar Haddad"],
        ),
    ];
    raw.into_iter()
        .map(|(name, html, gold)| {
            (
                name,
                PageTree::parse(html),
                gold.iter().map(|s| s.to_string()).collect(),
            )
        })
        .collect()
}

fn main() {
    let question = "Who are the current PhD students?";
    let keywords = ["Students", "PhD", "Advisees"];
    let all = pages();

    let system = WebQa::new(Config::default());
    let ctx = system.context(question, &keywords);
    let trees: Vec<PageTree> = all.iter().map(|(_, t, _)| t.clone()).collect();

    // Step 1: WebQA proposes which pages to label (k-center clustering over
    // structural + NLP features, capped at MAX_LABEL_REQUESTS).
    let to_label = suggest_labels(&ctx, &trees, 3);
    assert!(to_label.len() <= MAX_LABEL_REQUESTS);
    println!("WebQA asks for labels on:");
    for &i in &to_label {
        println!("  - {}", all[i].0);
    }

    // Step 2: the "user" provides gold labels for exactly those pages.
    let labeled: Vec<(PageTree, Vec<String>)> = to_label
        .iter()
        .map(|&i| (all[i].1.clone(), all[i].2.clone()))
        .collect();
    let rest: Vec<usize> = (0..all.len()).filter(|i| !to_label.contains(i)).collect();
    let unlabeled: Vec<PageTree> = rest.iter().map(|&i| all[i].1.clone()).collect();

    // Step 3: synthesize + transductively select + extract.
    let result = system.run(question, &keywords, &labeled, &unlabeled);
    let program = result
        .program
        .as_ref()
        .expect("synthesis succeeds on these pages");
    println!("\nselected program: {program}");

    let gold: Vec<Vec<String>> = rest.iter().map(|&i| all[i].2.clone()).collect();
    let score = score_answers(&result.answers, &gold);
    println!("held-out score  : {score}");
    for (&i, answers) in rest.iter().zip(&result.answers) {
        println!("  {:<7} -> {:?}", all[i].0, answers);
    }
}
