//! The paper's interactive-labeling loop (Section 7) on user-supplied
//! pages, driven through the staged engine: WebQA clusters the target
//! pages and proposes which (at most five) to label, the "user" labels
//! them one at a time, and only the synthesis stage re-runs after each
//! new label.
//!
//! ```text
//! cargo run --example interactive_labeling
//! ```

use webqa::{score_answers, Config, Engine, Task, MAX_LABEL_REQUESTS};

/// Hand-written faculty pages with three different layouts — the
/// structural heterogeneity of Figure 2/3 of the paper in miniature.
fn pages() -> Vec<(&'static str, &'static str, Vec<String>)> {
    let raw: Vec<(&'static str, &'static str, &'static [&'static str])> = vec![
        (
            "jane",
            "<h1>Jane Doe</h1>\
             <h2>Students</h2><h3>PhD students</h3>\
             <ul><li>Robert Smith</li><li>Mary Anderson</li></ul>\
             <h2>Activities</h2><p>PLDI '21 (PC)</p>",
            &["Robert Smith", "Mary Anderson"],
        ),
        (
            "john",
            "<h1>John Doe</h1>\
             <h2>Research</h2><p>Programming languages.</p>\
             <h2>Advisees</h2><ul><li>Sarah Brown</li></ul>",
            &["Sarah Brown"],
        ),
        (
            "robert",
            "<h1>Robert Doe</h1>\
             <h2>Teaching</h2><p>CS 001. CS 010.</p>\
             <h2>Current PhD Students</h2>\
             <ul><li>Wei Chen</li><li>Elena Petrov</li><li>Ade Okafor</li></ul>",
            &["Wei Chen", "Elena Petrov", "Ade Okafor"],
        ),
        (
            "alice",
            "<h1>Alice Roe</h1>\
             <h2>Group</h2><table><tr><td>Tom Lee</td></tr><tr><td>Ana Cruz</td></tr></table>\
             <h2>Service</h2><p>POPL '20 (PC)</p>",
            &["Tom Lee", "Ana Cruz"],
        ),
        (
            "bob",
            "<h1>Bob Poe</h1>\
             <h2>News</h2><p>Two papers accepted to PLDI 2019.</p>\
             <h2>PhD Students</h2><ul><li>Ivan Novak</li></ul>",
            &["Ivan Novak"],
        ),
        (
            "carol",
            "<h1>Carol Low</h1>\
             <h2>Publications</h2><p>Synthesizing programs from examples. PLDI 2018.</p>\
             <h2>Students</h2><ul><li>Lin Zhang</li><li>Omar Haddad</li></ul>",
            &["Lin Zhang", "Omar Haddad"],
        ),
    ];
    raw.into_iter()
        .map(|(name, html, gold)| (name, html, gold.iter().map(|s| s.to_string()).collect()))
        .collect()
}

fn main() {
    let question = "Who are the current PhD students?";
    let keywords = ["Students", "PhD", "Advisees"];

    // Every page goes into the store once — the fallible path reports
    // damaged HTML instead of silently mis-parsing it. `names` and
    // `golds` stay aligned with the engine's unlabeled set throughout.
    let mut engine = Engine::new(Config::default());
    let mut spec = Task::new(question, keywords);
    let mut names: Vec<&str> = Vec::new();
    let mut golds: Vec<Vec<String>> = Vec::new();
    for (name, html, gold) in pages() {
        let id = engine.store_mut().insert_html(html).expect("clean pages");
        spec.unlabeled.push(id);
        names.push(name);
        golds.push(gold);
    }

    // Start with zero labels; each round the engine proposes the most
    // informative remaining page, the "user" supplies its gold, and only
    // the synthesis stage re-runs.
    let mut prepared = engine.prepare(&spec).expect("ids from this store");
    for round in 1..=3 {
        let suggestion = prepared.suggest_labels(1);
        assert!(suggestion.len() <= MAX_LABEL_REQUESTS);
        let idx = suggestion[0];
        let (name, gold) = (names.remove(idx), golds.remove(idx));
        println!("round {round}: engine asks about {name:?}; user labels {gold:?}");
        prepared.label(idx, gold);

        let synthesized = prepared.synthesize();
        println!(
            "  train F1 {:.2} over {} label(s)",
            synthesized.train_f1(),
            round
        );
        prepared = synthesized.refine();
    }

    // Final pass: synthesize on the gathered labels, select
    // transductively against the remaining pages, extract.
    let selected = prepared.synthesize().select();
    let program = selected.program().expect("synthesis succeeds here");
    println!("\nselected program: {program}");

    let answers = selected.answers();
    let score = score_answers(&answers, &golds).expect("aligned");
    println!("held-out score  : {score}");
    for (name, ans) in names.iter().zip(&answers) {
        println!("  {name:<7} -> {ans:?}");
    }
}
