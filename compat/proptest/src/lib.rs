//! Offline stand-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal reimplementation as a path dependency. It keeps proptest's
//! surface syntax — the `proptest!` macro, `Strategy` combinators
//! (`prop_map`, `prop_recursive`, `prop_oneof!`), regex-literal string
//! strategies, `proptest::collection::vec`, and the `prop_assert*` macros —
//! but replaces the engine with plain seeded random generation:
//!
//! * no shrinking: a failing case panics with the assertion message and the
//!   deterministic per-test seed, which is enough to reproduce it;
//! * generation is deterministic per test (seeded by the test's module path
//!   and name), so CI runs are stable;
//! * regex strategies support the subset actually used in this repo's tests:
//!   literals, `.`, `\PC`, character classes with ranges and `\n`-style
//!   escapes, groups, alternation, and `{n}` / `{n,m}` / `?` / `*` / `+`
//!   quantifiers.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the `proptest!`-style tests normally import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                let mut __rng = $crate::test_runner::TestRng::deterministic(__test_name);
                // Build each strategy once per test, not once per case:
                // strategy trees (prop_recursive unions, compiled regex
                // patterns) can be expensive to construct.
                let __strategy = ($($strat,)+);
                let mut __cases_run: u32 = 0;
                let mut __rejects: u32 = 0;
                while __cases_run < __config.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    match __result {
                        ::core::result::Result::Ok(()) => __cases_run += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            __rejects += 1;
                            assert!(
                                __rejects < __config.cases.saturating_mul(16) + 256,
                                "{}: too many prop_assume rejections", __test_name
                            );
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property test {} failed at case {}: {}",
                                __test_name, __cases_run, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case with the assertion (and optional format message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Rejects (skips) the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
