//! `any::<T>()` and the [`Arbitrary`] trait for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical default strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy for an [`Arbitrary`] type; built by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Bounded: most properties over floats want finite, tame values.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        char::from_u32(rng.in_range_u32(0x20, 0x7E)).unwrap()
    }
}
