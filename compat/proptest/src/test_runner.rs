//! Test-loop plumbing: the per-test RNG, config, and case outcome.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Drop-in for `proptest::test_runner::Config` (`ProptestConfig`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// Outcome of one generated case, produced by the `prop_assert*` /
/// `prop_assume!` macros inside the test body.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions failed; skip it without counting.
    Reject,
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

/// The generator handed to strategies while running a test.
///
/// Deterministically seeded from the test's full name (and the
/// `PROPTEST_SEED` environment variable, if set, to explore other streams).
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the RNG from a test name so runs are reproducible.
    pub fn deterministic(test_name: &str) -> TestRng {
        // FNV-1a over the name, mixed with an optional env override.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                h = h.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `usize` in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        use rand::Rng;
        self.inner.gen_range(0..n)
    }

    /// Uniform `u32` in `[lo, hi]`.
    pub fn in_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        use rand::Rng;
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
