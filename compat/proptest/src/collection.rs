//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length distribution for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "collection size range is empty");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>`; built by [`vec`](fn@vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
