//! Regex-subset string generation backing `"..."` strategies.
//!
//! Supported syntax (the subset this repo's tests use, plus a little slack):
//! literal characters, `.`, `\PC` (any printable, i.e. non-control,
//! character), character classes `[...]` / `[^...]` with ranges and `\n`,
//! `\t`, `\r`, `\\`, `\]`-style escapes, groups `(...)`, alternation `|`,
//! and the quantifiers `{n}`, `{n,m}`, `?`, `*`, `+`.

use crate::test_runner::TestRng;

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Pattern {
    root: Ast,
}

#[derive(Debug, Clone)]
enum Ast {
    /// Choose one branch uniformly.
    Alt(Vec<Ast>),
    /// Emit each part in order.
    Seq(Vec<Ast>),
    /// Repeat the inner pattern uniformly between `min` and `max` times.
    Rep(Box<Ast>, u32, u32),
    /// A literal character.
    Lit(char),
    /// A character class: inclusive ranges, possibly negated.
    Class(Vec<(char, char)>, bool),
    /// `.` / `\PC`: any printable character.
    Printable,
}

/// Pool for `Printable` and negated-class sampling: mostly ASCII printable,
/// with a few multi-byte characters so char-boundary bugs still surface.
const EXOTIC: &[char] = &['é', 'ü', 'ß', 'λ', '→', '中', '文', '№', '€', '…'];

impl Pattern {
    /// Parses `pattern`, panicking on syntax outside the supported subset
    /// (a programming error in the test, not a test failure).
    pub fn compile(pattern: &str) -> Pattern {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let root = parse_alt(&chars, &mut pos);
        assert!(
            pos == chars.len(),
            "unsupported regex {pattern:?}: trailing {:?}",
            &chars[pos..]
        );
        Pattern { root }
    }

    /// Generates one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        emit(&self.root, rng, &mut out);
        out
    }
}

fn emit(ast: &Ast, rng: &mut TestRng, out: &mut String) {
    match ast {
        Ast::Alt(branches) => emit(&branches[rng.below(branches.len())], rng, out),
        Ast::Seq(parts) => {
            for p in parts {
                emit(p, rng, out);
            }
        }
        Ast::Rep(inner, min, max) => {
            let n = rng.in_range_u32(*min, *max);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
        Ast::Lit(c) => out.push(*c),
        Ast::Printable => out.push(printable(rng)),
        Ast::Class(ranges, negated) => out.push(class_char(ranges, *negated, rng)),
    }
}

fn printable(rng: &mut TestRng) -> char {
    if rng.below(10) == 0 {
        EXOTIC[rng.below(EXOTIC.len())]
    } else {
        char::from_u32(rng.in_range_u32(0x20, 0x7E)).unwrap()
    }
}

fn class_char(ranges: &[(char, char)], negated: bool, rng: &mut TestRng) -> char {
    if negated {
        // Rejection-sample from the printable pool.
        for _ in 0..256 {
            let c = printable(rng);
            if !ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi) {
                return c;
            }
        }
        panic!("negated class rejects the whole printable pool");
    }
    let total: u32 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
        .sum();
    let mut k = rng.in_range_u32(0, total - 1);
    for &(lo, hi) in ranges {
        let span = hi as u32 - lo as u32 + 1;
        if k < span {
            return char::from_u32(lo as u32 + k).expect("class range stays in scalar values");
        }
        k -= span;
    }
    unreachable!()
}

fn parse_alt(chars: &[char], pos: &mut usize) -> Ast {
    let mut branches = vec![parse_seq(chars, pos)];
    while *pos < chars.len() && chars[*pos] == '|' {
        *pos += 1;
        branches.push(parse_seq(chars, pos));
    }
    if branches.len() == 1 {
        branches.pop().unwrap()
    } else {
        Ast::Alt(branches)
    }
}

fn parse_seq(chars: &[char], pos: &mut usize) -> Ast {
    let mut parts = Vec::new();
    while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
        let atom = parse_atom(chars, pos);
        parts.push(parse_quantifier(atom, chars, pos));
    }
    Ast::Seq(parts)
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Ast {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            let inner = parse_alt(chars, pos);
            assert!(
                *pos < chars.len() && chars[*pos] == ')',
                "unsupported regex: unclosed group"
            );
            *pos += 1;
            inner
        }
        '[' => parse_class(chars, pos),
        '.' => {
            *pos += 1;
            Ast::Printable
        }
        '\\' => {
            *pos += 1;
            let c = chars[*pos];
            *pos += 1;
            match c {
                // \PC (printable / non-control); also accept \P{C}.
                'P' => {
                    if chars.get(*pos) == Some(&'{') {
                        while chars[*pos] != '}' {
                            *pos += 1;
                        }
                        *pos += 1;
                    } else {
                        *pos += 1; // the category letter, e.g. the C in \PC
                    }
                    Ast::Printable
                }
                'n' => Ast::Lit('\n'),
                't' => Ast::Lit('\t'),
                'r' => Ast::Lit('\r'),
                other => Ast::Lit(other),
            }
        }
        c => {
            *pos += 1;
            Ast::Lit(c)
        }
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Ast {
    *pos += 1; // consume '['
    let negated = chars[*pos] == '^';
    if negated {
        *pos += 1;
    }
    let mut ranges: Vec<(char, char)> = Vec::new();
    while chars[*pos] != ']' {
        let lo = class_member(chars, pos);
        if chars[*pos] == '-' && chars[*pos + 1] != ']' {
            *pos += 1;
            let hi = class_member(chars, pos);
            assert!(lo <= hi, "unsupported regex: inverted class range");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    *pos += 1; // consume ']'
    assert!(!ranges.is_empty(), "unsupported regex: empty class");
    Ast::Class(ranges, negated)
}

fn class_member(chars: &[char], pos: &mut usize) -> char {
    let c = chars[*pos];
    *pos += 1;
    if c != '\\' {
        return c;
    }
    let e = chars[*pos];
    *pos += 1;
    match e {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse_quantifier(atom: Ast, chars: &[char], pos: &mut usize) -> Ast {
    if *pos >= chars.len() {
        return atom;
    }
    match chars[*pos] {
        '?' => {
            *pos += 1;
            Ast::Rep(Box::new(atom), 0, 1)
        }
        '*' => {
            *pos += 1;
            Ast::Rep(Box::new(atom), 0, 8)
        }
        '+' => {
            *pos += 1;
            Ast::Rep(Box::new(atom), 1, 8)
        }
        '{' => {
            *pos += 1;
            let mut min = String::new();
            while chars[*pos].is_ascii_digit() {
                min.push(chars[*pos]);
                *pos += 1;
            }
            let min: u32 = min.parse().expect("quantifier lower bound");
            let max = if chars[*pos] == ',' {
                *pos += 1;
                let mut max = String::new();
                while chars[*pos].is_ascii_digit() {
                    max.push(chars[*pos]);
                    *pos += 1;
                }
                max.parse().expect("quantifier upper bound")
            } else {
                min
            };
            assert!(chars[*pos] == '}', "unsupported regex: bad quantifier");
            *pos += 1;
            Ast::Rep(Box::new(atom), min, max)
        }
        _ => atom,
    }
}
