//! The [`Strategy`] trait and combinators.
//!
//! Unlike real proptest there is no shrinking and no value tree; a strategy
//! is just a recipe for generating one value from the test RNG.

use crate::string::Pattern;
use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a bounded-depth recursive strategy: `self` is the leaf case and
    /// `recurse` wraps a strategy for subtrees into a strategy for branches.
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility but only `depth` bounds the recursion here.
    fn prop_recursive<R, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: R,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`], used behind [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                let mut r = ShimRng(rng);
                r.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                let mut r = ShimRng(rng);
                r.gen_range(self.clone())
            }
        }
    )+};
}

/// Adapter exposing [`TestRng`] as a `rand::RngCore`.
struct ShimRng<'a>(&'a mut TestRng);

impl rand::RngCore for ShimRng<'_> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String literals are regex strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        Pattern::compile(self).generate(rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        Pattern::compile(self).generate(rng)
    }
}
