//! Serialization half of the shim: [`Serialize`], [`Serializer`], and the
//! compound-builder traits the derive macro targets.

use std::fmt::Display;

/// Formats that can report errors from `Serialize` impls.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized.
pub trait Serialize {
    /// Feeds `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize the shim's (JSON-shaped) data model.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Builder returned by [`Serializer::serialize_seq`].
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Builder returned by [`Serializer::serialize_map`].
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Builder returned by [`Serializer::serialize_struct`].
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value (`null` in JSON).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes the value inside `Some`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a dataless enum variant (as its name, like serde-JSON).
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;

    /// Serializes a `Display` value as a string (used by types whose
    /// canonical form is textual, like DSL programs).
    fn collect_str<T: Display + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_str(&value.to_string())
    }
}

/// Sequence builder.
pub trait SerializeSeq {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Appends one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map builder.
pub trait SerializeMap {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Appends one entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct builder.
pub trait SerializeStruct {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Appends one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! serialize_int {
    ($method:ident: $($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as _)
            }
        }
    )+};
}

serialize_int!(serialize_i64: i8, i16, i32, i64, isize);
serialize_int!(serialize_u64: u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            SerializeSeq::serialize_element(&mut seq, item)?;
        }
        SerializeSeq::end(seq)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}
