//! Offline stand-in for the subset of the
//! [`serde`](https://crates.io/crates/serde) crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal reimplementation as a path dependency. The
//! serialization side keeps serde's shape (a `Serializer` trait driven by
//! `Serialize` impls, including `collect_str` for Display-based formats).
//! The deserialization side is deliberately simpler than real serde: a
//! `Deserializer` produces one self-describing [`de::Content`] tree and
//! `Deserialize` impls pattern-match on it — no visitors. That is exactly
//! enough for the JSON round-trips this repo performs.

#![warn(missing_docs)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
// Derive macros, as in real serde's `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
