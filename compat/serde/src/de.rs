//! Deserialization half of the shim.
//!
//! Instead of serde's visitor machinery, a [`Deserializer`] yields one
//! self-describing [`Content`] tree and [`Deserialize`] impls match on it.
//! [`ContentDeserializer`] re-wraps a subtree so nested fields can recurse
//! through the same `Deserialize` trait.

use std::fmt::Display;
use std::marker::PhantomData;

/// Formats that can report errors from `Deserialize` impls.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A self-describing deserialized tree (the shim's whole data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map with insertion order preserved.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "a boolean",
            Content::I64(_) | Content::U64(_) => "an integer",
            Content::F64(_) => "a float",
            Content::Str(_) => "a string",
            Content::Seq(_) => "a sequence",
            Content::Map(_) => "a map",
        }
    }
}

/// A data format that can be deserialized from.
pub trait Deserializer<'de>: Sized {
    /// Error type of the format.
    type Error: Error;
    /// Consumes the input into one [`Content`] tree.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Builds `Self` from the deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Wraps an already-deserialized subtree as a [`Deserializer`], so nested
/// `Deserialize` impls can recurse.
pub struct ContentDeserializer<E> {
    content: Content,
    marker: PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    /// Wraps `content`.
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            marker: PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;
    fn deserialize_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(Error::custom(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(Error::custom(format!(
                "expected a boolean, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! deserialize_uint {
    ($($t:ty),+) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let n: u64 = match content {
                    Content::U64(n) => n,
                    Content::I64(n) if n >= 0 => n as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected an unsigned integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )+};
}

deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),+) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let n: i64 = match content {
                    Content::I64(n) => n,
                    Content::U64(n) => i64::try_from(n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected an integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )+};
}

deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::F64(x) => Ok(x),
            Content::I64(n) => Ok(n as f64),
            Content::U64(n) => Ok(n as f64),
            other => Err(Error::custom(format!(
                "expected a number, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => T::deserialize(ContentDeserializer::<D::Error>::new(other)).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|c| T::deserialize(ContentDeserializer::<D::Error>::new(c)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected a sequence, found {}",
                other.kind()
            ))),
        }
    }
}
