//! Serialization: `Serialize` → [`Value`] → JSON text (compact or pretty).

use crate::{Error, Map, Number, Value};
use serde::ser::{SerializeMap, SerializeSeq, SerializeStruct};

/// Serializes `value` to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value_to_string(&crate::to_value(value)?, false))
}

/// Serializes `value` to pretty-printed (2-space indented) JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value_to_string(&crate::to_value(value)?, true))
}

pub(crate) fn value_to_string(value: &Value, pretty: bool) -> String {
    let mut out = String::new();
    write_value(value, pretty, 0, &mut out);
    out
}

fn write_value(value: &Value, pretty: bool, indent: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline_indent(indent + 1, out);
                }
                write_value(item, pretty, indent + 1, out);
            }
            if pretty {
                newline_indent(indent, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline_indent(indent + 1, out);
                }
                write_string(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(v, pretty, indent + 1, out);
            }
            if pretty {
                newline_indent(indent, out);
            }
            out.push('}');
        }
    }
}

fn newline_indent(level: usize, out: &mut String) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if v.is_finite() => {
            // Like real serde_json, integral floats keep a ".0".
            if v == v.trunc() && v.abs() < 1e15 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
        // Real serde_json refuses non-finite floats; emitting null keeps
        // report generation total without an error path through Display.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The `Serializer` that builds a [`Value`] tree.
pub(crate) struct ValueSerializer;

impl serde::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = SeqBuilder;
    type SerializeMap = MapBuilder;
    type SerializeStruct = MapBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Number(if v >= 0 {
            Number::U64(v as u64)
        } else {
            Number::I64(v)
        }))
    }
    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::Number(Number::U64(v)))
    }
    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::Number(Number::F64(v)))
    }
    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_string()))
    }
    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_some<T: serde::Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        value.serialize(ValueSerializer)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::String(variant.to_string()))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<MapBuilder, Error> {
        Ok(MapBuilder { map: Map::new() })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<MapBuilder, Error> {
        Ok(MapBuilder { map: Map::new() })
    }
}

/// Accumulates array elements.
pub(crate) struct SeqBuilder {
    items: Vec<Value>,
}

impl SerializeSeq for SeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: serde::Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.items))
    }
}

/// Accumulates object entries (used for both maps and structs).
pub(crate) struct MapBuilder {
    map: Map<String, Value>,
}

impl SerializeMap for MapBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_entry<K: serde::Serialize + ?Sized, V: serde::Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        let key = match key.serialize(ValueSerializer)? {
            Value::String(s) => s,
            other => return Err(Error(format!("map key must be a string, got {other:?}"))),
        };
        self.map.insert(key, value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.map))
    }
}

impl SerializeStruct for MapBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: serde::Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.map
            .insert(key.to_string(), value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.map))
    }
}
