//! Deserialization: JSON text → `serde::de::Content` → `Deserialize` impls.

use crate::Error;
use serde::de::{Content, ContentDeserializer};

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<'de, T: serde::Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::deserialize(ContentDeserializer::<Error>::new(content))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error("unexpected end of input".to_string())),
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!(
                                "expected ',' or ']' at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!(
                                "expected ',' or '}}' at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error(format!(
                "unexpected character {:?} at offset {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the next escape must be a
                                // low surrogate, or the input is rejected.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error(format!(
                                        "unpaired surrogate \\u{hi:04x} at offset {}",
                                        self.pos
                                    )));
                                }
                                char::from_u32(0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00))
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                Error(format!("invalid \\u escape at offset {}", self.pos))
                            })?);
                        }
                        other => return Err(Error(format!("invalid escape \\{}", other as char))),
                    }
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid \\u escape".to_string()))?;
        let v =
            u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".to_string()))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Content::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }
}
