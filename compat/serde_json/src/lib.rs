//! Offline stand-in for the subset of the
//! [`serde_json`](https://crates.io/crates/serde_json) crate this workspace
//! uses: [`Value`] / [`Map`], [`to_string`] / [`to_string_pretty`],
//! [`from_str`], [`to_value`], and a `json!` macro limited to serializable
//! expressions (the only form this repo uses).
//!
//! Built on the `compat/serde` shim: serialization drives the shim's
//! `Serializer` trait into a [`Value`]; deserialization parses JSON text
//! into the shim's `Content` tree and hands subtrees to `Deserialize`
//! impls.

#![warn(missing_docs)]

mod read;
mod write;

pub use read::from_str;
pub use write::{to_string, to_string_pretty};

use serde::de::Content;
use std::fmt;

/// Error type for all serde_json shim operations.
#[derive(Debug, Clone)]
pub struct Error(pub(crate) String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

/// A JSON number (integer-preserving, like real serde_json).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An unsigned integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
}

impl Number {
    /// The number as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(x) => x,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(_) => None,
        }
    }
}

/// An order-preserving JSON object.
///
/// Generic in name for API compatibility (`Map<_, _>` in turbofish
/// position), but only `Map<String, Value>` is ever instantiated.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// An empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts an entry, replacing (in place) any existing one with the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup that returns `Null` for missing keys / non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Value {
        Value::Object(m)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&write::value_to_string(self, false))
    }
}

/// Serializes any `Serialize` value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(write::ValueSerializer)
}

impl serde::Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Number(Number::U64(n)) => serializer.serialize_u64(*n),
            Value::Number(Number::I64(n)) => serializer.serialize_i64(*n),
            Value::Number(Number::F64(x)) => serializer.serialize_f64(*x),
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(items) => items.serialize(serializer),
            Value::Object(map) => {
                use serde::ser::SerializeMap as _;
                let mut m = serializer.serialize_map(Some(map.len()))?;
                for (k, v) in map.iter() {
                    m.serialize_entry(k, v)?;
                }
                m.end()
            }
        }
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(content_to_value(deserializer.deserialize_content()?))
    }
}

fn content_to_value(content: Content) -> Value {
    match content {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::I64(n) => Value::Number(Number::I64(n)),
        Content::U64(n) => Value::Number(Number::U64(n)),
        Content::F64(x) => Value::Number(Number::F64(x)),
        Content::Str(s) => Value::String(s),
        Content::Seq(items) => Value::Array(items.into_iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k, content_to_value(v)))
                .collect(),
        ),
    }
}

/// Builds a [`Value`] from a serializable expression.
///
/// Unlike real serde_json, only the expression form is supported — this
/// repo never uses the `{...}`/`[...]` literal syntax.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($e:expr) => {
        $crate::to_value(&$e).expect("json!: infallible serialization")
    };
}
