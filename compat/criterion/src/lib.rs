//! Offline stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) crate this workspace
//! uses: `Criterion::bench_function`, `benchmark_group` (+ `sample_size`),
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal reimplementation as a path dependency. Measurement
//! is a plain calibrated timing loop (warm-up, then enough iterations to
//! fill a small time budget, repeated for a handful of samples; the median
//! sample is reported). No statistics machinery, plots, or baselines —
//! numbers print as `<name> ... median ± spread` per target.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Entry point handed to each bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Times `f` and prints one result line labelled `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to take per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times `f` and prints one result line labelled `group/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Timing harness handed to the closure of `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `self.iters` times and records the elapsed wall time.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the iteration count until one sample takes >= 5 ms
    // (or a single iteration is already slower than that).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut per_iter: Vec<f64> = (0..samples.max(2))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let spread = per_iter[per_iter.len() - 1] - per_iter[0];
    println!(
        "{name:<40} {:>12} / iter (± {})",
        fmt_ns(median),
        fmt_ns(spread)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
