//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` stand-in in `compat/serde`.
//!
//! Implemented without `syn`/`quote` (crates.io is unreachable in this
//! build environment): the input item is scanned token-by-token for just
//! the shapes this workspace derives on —
//!
//! * structs with named fields, and
//! * enums whose variants are all unit variants
//!
//! — and the impl is assembled as source text, then parsed back into a
//! `TokenStream` (`TokenStream: FromStr`). Generics and `#[serde(...)]`
//! attributes are not supported and panic at expansion time so misuse is
//! loud, not silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the item under derivation.
struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    /// Named-field struct, field names in declaration order.
    Struct(Vec<String>),
    /// Enum of unit variants, names in declaration order.
    Enum(Vec<String>),
}

/// Derives `serde::Serialize` (see crate docs for supported shapes).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut out = format!(
                "let mut state = serde::ser::Serializer::serialize_struct(serializer, \"{}\", {})?;\n",
                item.name,
                fields.len()
            );
            for f in fields {
                out.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut state, \"{f}\", &self.{f})?;\n"
                ));
            }
            out.push_str("serde::ser::SerializeStruct::end(state)\n");
            out
        }
        ItemKind::Enum(variants) => {
            let mut out = String::from("match self {\n");
            for (i, v) in variants.iter().enumerate() {
                out.push_str(&format!(
                    "{name}::{v} => serde::ser::Serializer::serialize_unit_variant(serializer, \"{name}\", {i}u32, \"{v}\"),\n",
                    name = item.name
                ));
            }
            out.push_str("}\n");
            out
        }
    };
    let src = format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize<S: serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n{body}}}\n\
         }}\n",
        name = item.name
    );
    src.parse()
        .expect("derive(Serialize): generated impl parses")
}

/// Derives `serde::Deserialize` (see crate docs for supported shapes).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut out = format!(
                "let content = serde::Deserializer::deserialize_content(deserializer)?;\n\
                 let mut map = match content {{\n\
                     serde::de::Content::Map(m) => m,\n\
                     other => return ::core::result::Result::Err(serde::de::Error::custom(\n\
                         format!(\"expected a map for struct {name}, found {{}}\", other.kind()))),\n\
                 }};\n",
                name = item.name
            );
            for f in fields {
                out.push_str(&format!(
                    "let {f} = {{\n\
                         let pos = map.iter().position(|(k, _)| k == \"{f}\").ok_or_else(||\n\
                             serde::de::Error::custom(\"missing field `{f}` in {name}\"))?;\n\
                         let (_, v) = map.swap_remove(pos);\n\
                         serde::Deserialize::deserialize(\n\
                             serde::de::ContentDeserializer::<D::Error>::new(v))?\n\
                     }};\n",
                    name = item.name
                ));
            }
            out.push_str(&format!(
                "::core::result::Result::Ok({} {{ {} }})\n",
                item.name,
                fields.join(", ")
            ));
            out
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "\"{v}\" => ::core::result::Result::Ok({}::{v}),\n",
                    item.name
                ));
            }
            format!(
                "let content = serde::Deserializer::deserialize_content(deserializer)?;\n\
                 match content {{\n\
                     serde::de::Content::Str(s) => match s.as_str() {{\n\
                         {arms}\
                         other => ::core::result::Result::Err(serde::de::Error::custom(\n\
                             format!(\"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     other => ::core::result::Result::Err(serde::de::Error::custom(\n\
                         format!(\"expected a string for enum {name}, found {{}}\", other.kind()))),\n\
                 }}\n",
                name = item.name
            )
        }
    };
    let src = format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::Deserializer<'de>>(deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n{body}}}\n\
         }}\n",
        name = item.name
    );
    src.parse()
        .expect("derive(Deserialize): generated impl parses")
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility until `struct` / `enum`.
    let kind_word = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub` (possibly followed by a `(...)` restriction), skip.
            }
            Some(_) => {}
            None => panic!("derive: no struct or enum found"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, found {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive: generic types are not supported by the serde shim")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("derive: tuple structs are not supported by the serde shim")
            }
            Some(_) => {}
            None => panic!("derive: expected {{...}} body"),
        }
    };
    let kind = if kind_word == "struct" {
        ItemKind::Struct(parse_struct_fields(body.stream()))
    } else {
        ItemKind::Enum(parse_unit_variants(body.stream()))
    };
    Item { name, kind }
}

/// Extracts field names from the `{ ... }` of a named-field struct.
fn parse_struct_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    'fields: loop {
        // Skip attributes and visibility in front of the field name.
        let name = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(_)) = tokens.peek() {
                        tokens.next(); // pub(crate) etc.
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("derive: unexpected token {other} in struct body"),
                None => break 'fields,
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive: expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        // Skip the type: consume until a top-level comma. Parens/brackets
        // arrive as whole groups, so only `<`/`>` nesting needs tracking —
        // taking care that the `>` of a `->` (fn-pointer return type) is
        // not an angle-bracket close.
        let mut angle: i32 = 0;
        let mut prev_dash = false;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) => {
                    match p.as_char() {
                        '<' => angle += 1,
                        '>' if !prev_dash => angle -= 1,
                        ',' if angle == 0 => break,
                        _ => {}
                    }
                    prev_dash = p.as_char() == '-';
                }
                Some(_) => prev_dash = false,
                None => break 'fields,
            }
        }
    }
    fields
}

/// Extracts variant names from the `{ ... }` of a unit-variant enum.
fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
            }
            Some(TokenTree::Ident(id)) => {
                variants.push(id.to_string());
                match tokens.next() {
                    None | Some(TokenTree::Punct(_)) => {} // `,` or end
                    Some(other) => panic!(
                        "derive: only unit enum variants are supported by the serde shim \
                         (found {other} after variant {})",
                        variants.last().expect("just pushed")
                    ),
                }
            }
            Some(other) => panic!("derive: unexpected token {other} in enum body"),
            None => break,
        }
    }
    variants
}
