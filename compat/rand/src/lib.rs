//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! crate this workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over
//! integer/float ranges, and `Rng::gen_bool`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal reimplementation as a path dependency. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms,
//! which is all the corpus generators and tests rely on (they only need
//! *stable* pseudo-randomness for a fixed seed, not the exact `rand` stream).

#![warn(missing_docs)]

pub mod rngs;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Rngs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 high bits give a uniform f64 in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` via Lemire-style
/// widening multiply; `n` must be nonzero.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening multiply with one rejection round bounds the bias far below
    // anything the seeded generators or tests could observe.
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n || lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}
