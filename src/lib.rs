//! Umbrella crate of the WebQA reproduction workspace.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`); the functionality lives in the member
//! crates, re-exported here for convenience:
//!
//! * [`webqa`] — end-to-end pipeline;
//! * [`webqa_dsl`] — the neurosymbolic DSL;
//! * [`webqa_synth`] — optimal synthesis;
//! * [`webqa_select`] — transductive program selection;
//! * [`webqa_corpus`] — the 25 tasks and the synthetic page corpus;
//! * [`webqa_baselines`] — BERTQA / HYB / EntExtract;
//! * [`webqa_html`] / [`webqa_nlp`] / [`webqa_metrics`] — substrates.

pub use webqa;
pub use webqa_baselines;
pub use webqa_corpus;
pub use webqa_dsl;
pub use webqa_html;
pub use webqa_metrics;
pub use webqa_nlp;
pub use webqa_select;
pub use webqa_synth;
