//! Umbrella crate of the WebQA reproduction workspace.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`); the functionality lives in the member
//! crates, re-exported here for convenience:
//!
//! * [`webqa`] — the session-oriented engine (staged pipeline, shared
//!   page store, batch execution);
//! * [`webqa_dsl`] — the neurosymbolic DSL;
//! * [`webqa_synth`] — optimal synthesis;
//! * [`webqa_select`] — transductive program selection;
//! * [`webqa_corpus`] — the 25 tasks and the synthetic page corpus;
//! * [`webqa_baselines`] — BERTQA / HYB / EntExtract;
//! * [`webqa_html`] / [`webqa_nlp`] / [`webqa_metrics`] — substrates.
//!
//! # Workspace layout
//!
//! The workspace is a stack of stateless library crates with one thin
//! binary on top. Arrows point from dependent to dependency:
//!
//! ```text
//!        webqa_cli (bin)   webqa_bench (10 bench targets)
//!              │  │                │  │
//!              │  └────────┬───────┘  │
//!              │           ▼          │
//!              │    webqa_server      │
//!              │   (resident daemon)  │
//!              │           │          │
//!              └───────┬───┴──────────┘
//!                      ▼
//!                   webqa  ──────────────┐
//!                   │  │                 │
//!          ┌────────┘  └──────┐          │
//!          ▼                  ▼          ▼
//!     webqa_synth        webqa_select   webqa_corpus   webqa_baselines
//!          │                  │          │    │          │
//!          └───────┬──────────┘          │    │          │
//!                  ▼                     │    │          │
//!              webqa_dsl ◄───────────────┘    │          │
//!               │  │  │                       │          │
//!       ┌───────┘  │  └────────┐              │          │
//!       ▼          ▼           ▼              ▼          ▼
//!  webqa_html  webqa_nlp  webqa_metrics  (html, nlp, metrics again)
//! ```
//!
//! * **Substrates** (`webqa_html`, `webqa_nlp`, `webqa_metrics`) have no
//!   in-workspace dependencies. HTML parsing, the simulated NLP modules,
//!   and the token-level F₁ / Hamming scoring kernel.
//! * **DSL** (`webqa_dsl`) builds the page-tree query language on the
//!   substrates: AST, parser, printer, evaluator, normalizer, linter,
//!   and the abstract interpreter (`webqa_dsl::analysis`) — a sound
//!   static analyzer over (program, context) pairs with three verdict
//!   families (provably-false and subsumed guards, provably-empty
//!   extractors, equivalence up to normalization via canonical keys)
//!   that feeds the linter's semantic `DeadBranch`, the synthesizer's
//!   analysis prune, and the `check` surfaces of the CLI and server;
//!   `tests/analysis_soundness.rs` confirms every verdict against the
//!   definitional evaluator on random corpus pages.
//! * **Search** (`webqa_synth`, `webqa_select`) implements the paper's
//!   two phases: optimal enumerative synthesis with the `UB = 2R/(1+R)`
//!   pruning bound, then transductive ensemble selection. Synthesis
//!   additionally consults the analyzer to skip candidates it proves
//!   dead before building or scoring them (`SynthConfig::analysis`,
//!   counted by the `analysis_pruned_*` stats and proven
//!   result-preserving by `stats_snapshot.rs` and `synth_parity.rs`).
//! * **Engine** (`webqa`) wires synthesis and selection into the
//!   session-oriented `Engine`: pages are parsed fallibly once into a
//!   shared `PageStore` (content-addressed `PageId` handles, zero
//!   deep-clones on the run path), the pipeline runs as inspectable
//!   stages (`prepare` → `synthesize` → `select` → `answers`) so the
//!   interactive-labeling loop and the ablations can drive any stage
//!   alone, errors are a typed `webqa::Error`, and independent tasks
//!   batch through `Engine::run_batch` on a scoped threadpool with
//!   deterministic input-ordered results (the runner caps combined
//!   batch × branch-parallel worker counts against the hardware budget).
//!   The engine additionally owns the cross-request caches: a sharded,
//!   content-keyed **two-tier** `FeatureStore` — a query-*independent*
//!   base tier (NER spans, leaf/element masks, keyed by page alone, so
//!   different questions over the same pages share the expensive half)
//!   under a thin query-dependent tier of keyword scores — and an LRU
//!   of completed runs; all pure values, so hits and evictions change
//!   latency, never results (`webqa::CacheStats` counts every tier,
//!   and a disabled tier counts nothing). The page store and base tier
//!   additionally persist: `webqa::PersistSink` spills them to a
//!   versioned, content-addressed on-disk snapshot
//!   (`Engine::spill_snapshot` / `load_snapshot`), checksummed and
//!   digest-verified on load so corruption degrades to a counted cold
//!   miss — `crates/core/tests/cache_semantics.rs` pins persist →
//!   reload → re-run equal to the never-cached reference. The
//!   pre-engine one-shot facade survives as the thin `WebQa::run`
//!   compatibility wrapper.
//!   **Workloads** (`webqa_corpus`, `webqa_baselines`) provide the 25
//!   evaluation tasks, the seeded page generators, and the three
//!   baseline systems.
//! * **Serving** (`webqa_server`) keeps engine state — and its caches —
//!   resident across requests, split into **digest-routed shards**:
//!   each shard owns an independent engine (store + caches) behind its
//!   own lock, its own bounded admission queue, and its own worker
//!   slice, with pages assigned by `content_digest % shards` (a pure
//!   function of page bytes, so a fleet of daemons agrees on placement
//!   without coordination) and wire handles interleaving the shard id
//!   so a 1-shard server stays bit-compatible with the pre-shard
//!   protocol. Two wire surfaces, both hand-rolled on `std::net`: a
//!   line-delimited JSON protocol over TCP and Unix sockets, and an
//!   HTTP/1.1 facade (`POST /v1/run|run_batch|intern|check`,
//!   `GET /v1/ping|stats`; keep-alive, `Content-Length` framing, error
//!   kinds mapped to status codes) whose response bodies are the
//!   line-protocol envelopes byte for byte — see the crate docs for
//!   both wire specs. Execution is a **bounded worker pool** per shard:
//!   engine concurrency is `workers`, never "number of open sockets",
//!   and when a shard's backlog cap is hit excess requests shed
//!   immediately with a typed `overloaded` error. Requests pipeline on
//!   one line-protocol connection (responses return in completion
//!   order, correlated by the echoed `id`), `run_batch` ships many
//!   tasks in one frame (cross-shard batches split per shard and
//!   reassemble in input order), and a per-request `deadline_ms` budget
//!   — queue wait included — trips a cooperative cancel token inside
//!   the synthesis enumerator, returning a typed `deadline-exceeded`
//!   without poisoning any cache. With `--cache-dir DIR` the daemon
//!   spills its page store and base-feature tier to the on-disk
//!   snapshot at shutdown and reloads it (per shard, owned digests
//!   only) at startup, so restarts are warm; load/spill/corruption
//!   counters surface through `stats` on both wire surfaces. `tests/serve_api.rs` proves serving
//!   observationally invisible (concurrent duplicated request streams
//!   answer byte-identically to a cold, never-cached engine — at 1
//!   shard, at 4 shards, and over HTTP — shard routing ignores intern
//!   order, the per-shard stats breakdown sums to the totals, and
//!   fuzzed pipelined interleavings never wedge);
//!   `tests/serve_overload.rs` proves the bounds (prompt typed shedding
//!   at saturation, deadlines covering synthesis and queue wait,
//!   cancellation isolated from pipelined neighbors, and the whole
//!   contract intact on a 4-shard server with cross-shard batches).
//! * **Apps** (`webqa_cli`, `webqa_bench`) stay thin: argument parsing and
//!   report formatting only, every decision delegated to the libraries
//!   (`webqa-cli serve` / `client` front the daemon over either
//!   protocol; `webqa-cli bench-fleet` spawns an in-process fleet of
//!   daemons and records the shards-vs-throughput trajectory).
//!
//! This umbrella crate (`webqa-repro`) re-exports everything so the
//! integration tests and examples can `use` one coherent surface.
//!
//! Third-party dependencies (`rand`, `proptest`, `criterion`, `serde`,
//! `serde_json`) resolve to minimal offline stand-ins vendored under
//! `compat/` — see `compat/README.md` for exactly what subset each
//! implements and how to swap the real crates back in.

pub use webqa;
pub use webqa_baselines;
pub use webqa_corpus;
pub use webqa_dsl;
pub use webqa_html;
pub use webqa_metrics;
pub use webqa_nlp;
pub use webqa_select;
pub use webqa_server;
pub use webqa_synth;
